//! Chaos experiment: Hi-WAY's fault tolerance under injected failures.
//!
//! Not a figure from the paper — §3.3 describes the AM's fault tolerance
//! ("execution of the workflow need not be interrupted … resubmitting
//! failed tasks, provisioning additional containers") but the evaluation
//! never measures it. This experiment does: the Montage workflow runs on
//! an EC2-profile cluster while a seeded [`FaultPlan`] crashes and
//! recovers worker nodes, preempts containers, kills DataNode disks
//! (forcing re-replication), and throttles nodes with CPU-contention
//! windows; the AM additionally suffers transient tool crashes. Swept
//! over a fault-intensity knob, it reports, per intensity:
//!
//! * **completion rate** — fraction of repetitions that still finished;
//! * **makespan inflation** — median runtime relative to intensity 0;
//! * **wasted container-seconds** — work burnt in failed attempts and
//!   cancelled speculative duplicates;
//! * failure/recovery counters (infra vs. task failures, speculative
//!   duplicates, faults actually injected).
//!
//! Everything is seeded: the same binary produces byte-identical output
//! across runs (CI executes it twice and diffs), and intensity 0.0
//! degenerates to a fault-free run — the injector adds nothing.

use hiway_core::faults::{FaultConfig, FaultInjector, FaultPlan};
use hiway_core::{HiwayConfig, SchedulerPolicy};
use hiway_lang::dax::parse_dax;
use hiway_obs::Tracer;
use hiway_provdb::ProvDb;
use hiway_sim::NodeSpec;
use hiway_workloads::montage::MontageParams;
use hiway_workloads::profiles;
use hiway_yarn::Resource;

use crate::experiments::common;
use crate::stats::Summary;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct ChaosParams {
    pub workers: usize,
    /// Repetitions (independent seeds) per intensity.
    pub repetitions: usize,
    /// Fault-intensity knob values; 0.0 must be present (the baseline all
    /// inflation numbers are relative to).
    pub intensities: Vec<f64>,
}

impl Default for ChaosParams {
    fn default() -> ChaosParams {
        ChaosParams {
            workers: 8,
            repetitions: 10,
            intensities: vec![0.0, 0.5, 1.0, 2.0],
        }
    }
}

/// Outcome of one repetition.
#[derive(Clone, Copy, Debug)]
pub struct ChaosCell {
    pub completed: bool,
    pub makespan_secs: f64,
    pub wasted_container_secs: f64,
    pub infra_failures: u32,
    pub task_failures: u32,
    pub speculative_attempts: u32,
    /// Faults the injector actually applied (safety rules may skip some).
    pub faults_injected: usize,
}

/// Results: `cells[i]` holds the repetitions of `intensities[i]`.
#[derive(Clone, Debug)]
pub struct ChaosResult {
    pub intensities: Vec<f64>,
    pub cells: Vec<Vec<ChaosCell>>,
}

/// The fault scenario for one repetition. Recovery is quick relative to
/// the ~3-minute Montage makespan so crashed nodes return mid-run.
fn fault_config(seed: u64, intensity: f64) -> FaultConfig {
    FaultConfig {
        recovery_secs: 60.0,
        straggler_secs: 45.0,
        straggler_procs: 8,
        ..FaultConfig::with_intensity(seed, intensity)
    }
}

fn chaos_am_config(seed: u64, task_failure_prob: f64) -> HiwayConfig {
    HiwayConfig {
        container_resource: Resource::new(1, 2048),
        scheduler: SchedulerPolicy::DataAware,
        task_failure_prob,
        // Recovery machinery under test: fast retries, strike-based node
        // avoidance, and straggler re-execution.
        retry_backoff_secs: 2.0,
        retry_backoff_max_secs: 32.0,
        blacklist_strikes: 2,
        blacklist_decay_secs: 90.0,
        speculative_execution: true,
        speculation_factor: 2.0,
        speculation_min_secs: 8.0,
        seed,
        write_trace: false,
        ..HiwayConfig::default()
    }
}

/// Runs one seeded repetition at one intensity.
pub fn run_cell(workers: usize, intensity: f64, seed: u64) -> Result<ChaosCell, String> {
    run_cell_traced(workers, intensity, seed, &Tracer::disabled())
}

/// Like [`run_cell`], but with the runtime and the fault injector wired to
/// `tracer`, so fault instants land on the trace and the per-kind
/// `fault.*` counters land in the metrics registry.
pub fn run_cell_traced(
    workers: usize,
    intensity: f64,
    seed: u64,
    tracer: &Tracer,
) -> Result<ChaosCell, String> {
    let montage = MontageParams::default();
    let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
    deployment.runtime.set_tracer(tracer);
    for (path, size) in montage.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let fc = fault_config(seed ^ 0x000f_a417, intensity);
    let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
    let idx = deployment.runtime.submit(
        Box::new(source),
        chaos_am_config(seed, fc.task_failure_prob),
        ProvDb::new(),
    );
    let workers_ids = deployment.worker_ids();
    let plan = FaultPlan::generate(&fc, &workers_ids);
    let mut injector = FaultInjector::new(plan, workers_ids);
    injector.set_tracer(tracer);
    let reports = injector.run(&mut deployment.runtime);
    let report = &reports[idx];
    Ok(ChaosCell {
        completed: deployment.runtime.error_of(idx).is_none(),
        makespan_secs: report.runtime_secs(),
        wasted_container_secs: report.wasted_container_secs,
        infra_failures: report.infra_failures,
        task_failures: report.task_failures,
        speculative_attempts: report.speculative_attempts,
        faults_injected: injector.injected.len(),
    })
}

/// Runs the sweep; repetitions fan out across threads and merge back in
/// submission order, so output is byte-identical however many threads run.
pub fn run(params: &ChaosParams) -> Result<ChaosResult, String> {
    let mut jobs = Vec::new();
    for (i, &intensity) in params.intensities.iter().enumerate() {
        for rep in 0..params.repetitions {
            let seed = 11_000 + rep as u64 * 131 + i as u64 * 7_919;
            jobs.push((i, intensity, seed));
        }
    }
    let outcomes = common::par_map(jobs, |(i, intensity, seed)| {
        run_cell(params.workers, intensity, seed).map(|c| (i, c))
    });
    let mut cells: Vec<Vec<ChaosCell>> = vec![Vec::new(); params.intensities.len()];
    for outcome in outcomes {
        let (i, cell) = outcome?;
        cells[i].push(cell);
    }
    Ok(ChaosResult {
        intensities: params.intensities.clone(),
        cells,
    })
}

/// Runs the sweep and folds per-intensity totals into `tracer`'s metrics
/// registry: for each intensity `x` the counters
/// `chaos.faults_injected@x`, `chaos.infra_failures@x`,
/// `chaos.task_failures@x`, and `chaos.completed@x` record the sums over
/// all repetitions. (Cells run on worker threads, so they cannot share the
/// single-threaded tracer; the aggregation here is where the registry gets
/// fed.) A disabled tracer makes this identical to [`run`].
pub fn run_traced(params: &ChaosParams, tracer: &Tracer) -> Result<ChaosResult, String> {
    let result = run(params)?;
    if tracer.is_enabled() {
        for (i, cells) in result.cells.iter().enumerate() {
            let label = format!("{:.2}", result.intensities[i]);
            let sum = |f: &dyn Fn(&ChaosCell) -> u64| cells.iter().map(f).sum::<u64>();
            tracer.inc(
                &format!("chaos.faults_injected@{label}"),
                sum(&|c| c.faults_injected as u64),
            );
            tracer.inc(
                &format!("chaos.infra_failures@{label}"),
                sum(&|c| c.infra_failures as u64),
            );
            tracer.inc(
                &format!("chaos.task_failures@{label}"),
                sum(&|c| c.task_failures as u64),
            );
            tracer.inc(
                &format!("chaos.completed@{label}"),
                cells.iter().filter(|c| c.completed).count() as u64,
            );
        }
    }
    Ok(result)
}

/// Renders the sweep as a text table.
pub fn render(result: &ChaosResult) -> String {
    let baseline = result
        .intensities
        .iter()
        .position(|i| *i == 0.0)
        .map(|i| completed_makespans(&result.cells[i]))
        .map(|m| Summary::of(&m).median)
        .unwrap_or(0.0);
    let mut rows = Vec::new();
    for (i, cells) in result.cells.iter().enumerate() {
        let n = cells.len().max(1);
        let done = cells.iter().filter(|c| c.completed).count();
        let makespans = completed_makespans(cells);
        let median = Summary::of(&makespans).median;
        let inflation = if baseline > 0.0 && !makespans.is_empty() {
            median / baseline
        } else {
            f64::NAN
        };
        let mean = |f: &dyn Fn(&ChaosCell) -> f64| cells.iter().map(f).sum::<f64>() / n as f64;
        rows.push(vec![
            format!("{:.2}", result.intensities[i]),
            format!("{done}/{n}"),
            format!("{:.0}%", 100.0 * done as f64 / n as f64),
            if makespans.is_empty() {
                "-".into()
            } else {
                format!("{median:.1}")
            },
            if inflation.is_nan() {
                "-".into()
            } else {
                format!("{inflation:.2}x")
            },
            format!("{:.0}", mean(&|c| c.wasted_container_secs)),
            format!("{:.1}", mean(&|c| c.infra_failures as f64)),
            format!("{:.1}", mean(&|c| c.task_failures as f64)),
            format!("{:.1}", mean(&|c| c.speculative_attempts as f64)),
            format!("{:.1}", mean(&|c| c.faults_injected as f64)),
        ]);
    }
    common::render_table(
        &[
            "intensity",
            "completed",
            "rate",
            "makespan med (s)",
            "inflation",
            "wasted (cs)",
            "infra f",
            "task f",
            "spec",
            "faults",
        ],
        &rows,
    )
}

fn completed_makespans(cells: &[ChaosCell]) -> Vec<f64> {
    cells
        .iter()
        .filter(|c| c.completed)
        .map(|c| c.makespan_secs)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_core::driver::Runtime;

    /// One plain (no-injector) Montage run with the chaos AM config.
    fn plain_run(workers: usize, seed: u64) -> (bool, f64) {
        let montage = MontageParams::default();
        let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
        for (path, size) in montage.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let source = parse_dax(&montage.dax_source()).unwrap();
        let idx =
            deployment
                .runtime
                .submit(Box::new(source), chaos_am_config(seed, 0.0), ProvDb::new());
        let runtime: &mut Runtime = &mut deployment.runtime;
        let reports = runtime.run_to_completion();
        (runtime.error_of(idx).is_none(), reports[idx].runtime_secs())
    }

    #[test]
    fn zero_intensity_reproduces_fault_free_baseline() {
        // An empty fault plan must leave the run bit-identical to a plain
        // run_to_completion with the same seeds.
        let cell = run_cell(6, 0.0, 4242).unwrap();
        let (ok, makespan) = plain_run(6, 4242);
        assert!(cell.completed && ok);
        assert_eq!(
            cell.makespan_secs, makespan,
            "injector must be a no-op at rate 0"
        );
        assert_eq!(cell.infra_failures, 0);
        assert_eq!(cell.task_failures, 0);
        assert_eq!(cell.faults_injected, 0);
    }

    #[test]
    fn chaos_runs_complete_under_moderate_faults() {
        // Under a moderate plan the workflow should survive via retries —
        // and actually absorb some injected faults.
        let cell = run_cell(8, 1.0, 11_000).unwrap();
        assert!(cell.faults_injected > 0, "plan unexpectedly empty");
        assert!(cell.completed, "moderate chaos should be survivable");
        assert!(cell.makespan_secs > 0.0);
    }

    #[test]
    fn zero_intensity_emits_no_fault_events() {
        // The default disabled tracer must stay allocation-free: no
        // buffer exists, so nothing can have been recorded.
        let off = Tracer::disabled();
        let cell = run_cell_traced(6, 0.0, 4242, &off).unwrap();
        assert_eq!(cell.faults_injected, 0);
        assert_eq!(off.event_count(), 0);
        assert!(
            off.snapshot().is_none(),
            "disabled tracer allocates nothing"
        );

        // An enabled tracer at intensity 0 sees plenty of engine/driver
        // activity but exactly zero fault instants and fault counters.
        let on = Tracer::enabled();
        let cell = run_cell_traced(6, 0.0, 4242, &on).unwrap();
        assert_eq!(cell.faults_injected, 0);
        assert_eq!(on.counter_value("fault.injected"), 0);
        assert_eq!(on.counter_value("fault.skipped"), 0);
        let snap = on.snapshot().unwrap();
        assert!(
            !snap.events.is_empty(),
            "the run itself must still be traced"
        );
        assert!(snap.events.iter().all(|e| !matches!(
            e,
            hiway_obs::TraceEvent::Instant { name, .. } if name.starts_with("fault:")
        )));
    }

    #[test]
    fn traced_sweep_logs_per_intensity_fault_counts() {
        let params = ChaosParams {
            workers: 6,
            repetitions: 1,
            intensities: vec![0.0, 1.0],
        };
        let tracer = Tracer::enabled();
        let result = run_traced(&params, &tracer).unwrap();
        assert_eq!(tracer.counter_value("chaos.faults_injected@0.00"), 0);
        let injected_at_one: u64 = result.cells[1]
            .iter()
            .map(|c| c.faults_injected as u64)
            .sum();
        assert!(injected_at_one > 0, "intensity 1 should inject faults");
        assert_eq!(
            tracer.counter_value("chaos.faults_injected@1.00"),
            injected_at_one
        );
        assert_eq!(
            tracer.counter_value("chaos.completed@0.00"),
            result.cells[0].iter().filter(|c| c.completed).count() as u64
        );
    }

    #[test]
    fn chaos_sweep_is_deterministic() {
        let params = ChaosParams {
            workers: 6,
            repetitions: 2,
            intensities: vec![0.0, 1.0],
        };
        let a = render(&run(&params).unwrap());
        let b = render(&run(&params).unwrap());
        assert_eq!(a, b);
    }
}
