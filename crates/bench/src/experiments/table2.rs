//! Table 2 / Figure 5: weak scaling of the SNV workflow on EC2.
//!
//! "The workflow was first run using a single worker node, processing a
//! single genomic sample comprising eight files, each about one gigabyte
//! in size… In subsequent runs, we then repeatedly doubled the number of
//! worker nodes and volume of input data", up to 128 workers and more
//! than a terabyte, with reads obtained from S3 *during* execution and
//! CRAM-compressed intermediates. The paper observes near-linear weak
//! scaling: runtime stays in the 340–380 minute band throughout, and cost
//! per gigabyte falls from $0.31 to ~$0.10.

use hiway_core::SchedulerPolicy;
use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_provdb::ProvDb;
use hiway_sim::NodeSpec;
use hiway_workloads::profiles;
use hiway_workloads::snv::SnvParams;

use crate::experiments::common::{self, run_one};
use crate::stats::Summary;

/// Hourly price of an m3.large instance in EU West at the time of
/// writing of the paper (its cost rows divide out to this rate).
pub const M3_LARGE_USD_PER_HOUR: f64 = 0.146;

/// One rung of the weak-scaling ladder.
#[derive(Clone, Debug)]
pub struct Table2Row {
    pub workers: usize,
    pub masters: usize,
    pub data_bytes: u64,
    pub runtime_mins: Summary,
    pub avg_cost_per_run_usd: f64,
    pub avg_cost_per_gb_usd: f64,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Table2Params {
    pub worker_counts: Vec<usize>,
    pub runs: usize,
}

impl Default for Table2Params {
    fn default() -> Table2Params {
        Table2Params {
            worker_counts: vec![1, 2, 4, 8, 16, 32, 64, 128],
            runs: 3,
        }
    }
}

/// Runs one rung once and returns the runtime in seconds. Exposed so the
/// Figure 6 harness can reuse it while sampling node utilization.
pub fn run_rung(workers: usize, seed: u64) -> Result<(hiway_core::driver::Runtime, f64), String> {
    let snv = SnvParams::table2(workers); // one sample per worker
    let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
    let s3 = deployment.s3.expect("ec2 cluster has S3");
    for (path, size) in snv.input_files() {
        deployment
            .runtime
            .cluster
            .register_external_file(&path, s3, size);
    }
    let source = CuneiformWorkflow::parse("snv-weak-scaling", &snv.cuneiform_source(), seed)
        .map_err(|e| e.to_string())?;
    let mut config = profiles::whole_node_config(&NodeSpec::m3_large("proto"));
    config.scheduler = SchedulerPolicy::Fcfs; // as configured in the paper
    config.seed = seed;
    config.write_trace = false;
    let secs = run_one(
        &mut deployment.runtime,
        Box::new(source),
        config,
        ProvDb::new(),
    )?;
    Ok((deployment.runtime, secs))
}

/// Runs the whole ladder. Each (rung, repetition) cell is independently
/// seeded and fans out across threads; rows merge in ladder order.
pub fn run(params: &Table2Params) -> Result<Vec<Table2Row>, String> {
    let mut jobs = Vec::new();
    for &workers in &params.worker_counts {
        for r in 0..params.runs {
            jobs.push((workers, r));
        }
    }
    let cells = common::par_map(jobs, |(workers, r)| {
        let seed = workers as u64 * 100 + r as u64;
        let (_, secs) = run_rung(workers, seed)?;
        Ok::<f64, String>(secs / 60.0)
    });
    let mut cells = cells.into_iter();
    let mut rows = Vec::new();
    for &workers in &params.worker_counts {
        let snv = SnvParams::table2(workers);
        let mut runtimes = Vec::new();
        for _ in 0..params.runs {
            runtimes.push(cells.next().expect("one cell per (rung, run)")?);
        }
        let summary = Summary::of(&runtimes);
        let masters = 2;
        let vms = workers + masters;
        let cost_per_run = vms as f64 * (summary.mean / 60.0) * M3_LARGE_USD_PER_HOUR;
        let gb = snv.total_input_bytes() as f64 / 1.0e9;
        rows.push(Table2Row {
            workers,
            masters,
            data_bytes: snv.total_input_bytes(),
            runtime_mins: summary,
            avg_cost_per_run_usd: cost_per_run,
            avg_cost_per_gb_usd: cost_per_run / gb,
        });
    }
    Ok(rows)
}

/// Renders the table (and the Figure 5 series, which is the same data).
pub fn render(rows: &[Table2Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                r.masters.to_string(),
                format!("{:.2} GB", r.data_bytes as f64 / 1.0e9),
                format!("{:.2}", r.runtime_mins.mean),
                format!("{:.2}", r.runtime_mins.std_dev),
                format!("${:.2}", r.avg_cost_per_run_usd),
                format!("${:.2}", r.avg_cost_per_gb_usd),
            ]
        })
        .collect();
    crate::experiments::common::render_table(
        &[
            "workers",
            "masters",
            "data volume",
            "avg runtime (min)",
            "std dev",
            "cost/run",
            "cost/GB",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_scaling_holds_over_two_doublings() {
        let params = Table2Params {
            worker_counts: vec![1, 2, 4],
            runs: 1,
        };
        let rows = run(&params).unwrap();
        assert_eq!(rows.len(), 3);
        let base = rows[0].runtime_mins.mean;
        // Paper band: 340–380 minutes. Allow a loose 300–420 here.
        assert!(
            (300.0..420.0).contains(&base),
            "single-worker runtime {base:.1} min"
        );
        for row in &rows {
            let drift = row.runtime_mins.mean / base;
            assert!(
                (0.9..1.15).contains(&drift),
                "weak scaling broke at {} workers: {:.1} min",
                row.workers,
                row.runtime_mins.mean
            );
        }
        // Cost per GB decreases as masters amortize.
        assert!(rows[2].avg_cost_per_gb_usd < rows[0].avg_cost_per_gb_usd);
        // Data volume doubles with workers (up to per-file size jitter).
        let ratio = rows[1].data_bytes as f64 / rows[0].data_bytes as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}
