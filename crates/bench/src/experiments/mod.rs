//! One module per table/figure of the paper's evaluation.

pub mod ablation;
pub mod chaos;
pub mod common;
pub mod fig4;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod multiwf;
pub mod resume;
pub mod table1;
pub mod table2;
