//! Supplementary experiment: per-workflow AM instances under
//! multi-tenancy.
//!
//! The paper argues (§3.1) that "having one dedicated AM per workflow
//! results in a distribution of the workload associated with workflow
//! execution management and is therefore required to fully unlock the
//! scalability potential provided by Hadoop". This harness submits `k`
//! identical Montage workflows to one cluster — each getting its own AM,
//! exactly as the Hi-WAY client would — and compares the batch makespan
//! against running them back to back.

use hiway_core::{HiwayConfig, SchedulerPolicy};
use hiway_lang::dax::parse_dax;
use hiway_obs::{QueueEventKind, Tracer};
use hiway_provdb::ProvDb;
use hiway_sim::NodeSpec;
use hiway_workloads::montage::MontageParams;
use hiway_workloads::profiles;
use hiway_yarn::{QueuesConfig, Resource};

/// Result of one concurrency level.
#[derive(Clone, Debug)]
pub struct MultiwfPoint {
    pub workflows: usize,
    /// Makespan of the whole batch submitted concurrently.
    pub concurrent_secs: f64,
    /// Sum of makespans when run one after another.
    pub sequential_secs: f64,
}

impl MultiwfPoint {
    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.concurrent_secs
    }
}

fn montage_config(seed: u64) -> HiwayConfig {
    HiwayConfig {
        container_resource: Resource::new(1, 2048),
        scheduler: SchedulerPolicy::DataAware,
        seed,
        write_trace: false,
        ..HiwayConfig::default()
    }
}

/// Runs `k` Montage instances concurrently (one AM each) and sequentially
/// on a fresh `workers`-node cluster, returning both makespans.
pub fn run_level(workers: usize, k: usize, seed: u64) -> Result<MultiwfPoint, String> {
    let montage = MontageParams::default();

    // Concurrent: k AMs share the cluster.
    let concurrent_secs = {
        let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
        for (path, size) in montage.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let mut rt = deployment.runtime;
        let mut ids = Vec::new();
        for i in 0..k {
            // Each run writes under its own prefix (distinct users);
            // the raw input images stay shared.
            let dax = montage
                .dax_source()
                .replace("work/", &format!("u{i}/work/"))
                .replace("out/", &format!("u{i}/out/"));
            let source = parse_dax(&dax).map_err(|e| e.to_string())?;
            ids.push(rt.submit(
                Box::new(source),
                montage_config(seed + i as u64),
                ProvDb::new(),
            ));
        }
        let reports = rt.run_to_completion();
        for &idx in &ids {
            if let Some(e) = rt.error_of(idx) {
                return Err(e.to_string());
            }
        }
        reports.iter().map(|r| r.t_finish).fold(0.0f64, f64::max)
    };

    // Sequential: fresh cluster per run, makespans summed.
    let mut sequential_secs = 0.0;
    for i in 0..k {
        let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
        for (path, size) in montage.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
        let mut rt = deployment.runtime;
        let idx = rt.submit(
            Box::new(source),
            montage_config(seed + i as u64),
            ProvDb::new(),
        );
        let reports = rt.run_to_completion();
        if let Some(e) = rt.error_of(idx) {
            return Err(e.to_string());
        }
        sequential_secs += reports[idx].runtime_secs();
    }

    Ok(MultiwfPoint {
        workflows: k,
        concurrent_secs,
        sequential_secs,
    })
}

/// The two tenants of the fairness sweep: a 2:1 weight split.
const TENANTS: [(&str, f64); 2] = [("tenant-a", 2.0), ("tenant-b", 1.0)];

/// Per-queue outcome of the fairness sweep, averaged over the contended
/// steady-state window.
#[derive(Clone, Debug)]
pub struct FairnessQueue {
    pub queue: String,
    pub weight: f64,
    /// Mean instantaneous fair share (cluster fraction).
    pub mean_fair: f64,
    /// Mean observed dominant share.
    pub mean_share: f64,
    /// Mean vcores held.
    pub mean_vcores: f64,
}

/// Result of the two-tenant fairness sweep.
#[derive(Clone, Debug)]
pub struct FairnessSweep {
    pub queues: Vec<FairnessQueue>,
    /// Allocation rounds in which *both* tenants had pending demand —
    /// the window over which shares are averaged.
    pub contended_rounds: usize,
    /// Observed steady-state share ratio tenant-a : tenant-b.
    pub share_ratio: f64,
    /// Cross-queue preemption victims selected over the whole batch.
    pub preemptions: u64,
    /// Batch makespan.
    pub batch_secs: f64,
}

/// Runs `per_tenant` Montage instances in each of two scheduler queues
/// weighted 2:1 on a traced cluster and measures the steady-state share
/// split from the RM's per-queue audit log. Deterministic: same seed,
/// byte-identical rendering.
pub fn run_fairness(workers: usize, per_tenant: usize, seed: u64) -> Result<FairnessSweep, String> {
    let montage = MontageParams::default();
    let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
    deployment
        .runtime
        .cluster
        .rm
        .configure_queues(QueuesConfig::weighted_leaves(&TENANTS, Some(20.0)))
        .map_err(|e| e.to_string())?;
    let tracer = Tracer::enabled();
    deployment.runtime.set_tracer(&tracer);
    for (path, size) in montage.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let mut rt = deployment.runtime;
    let mut ids = Vec::new();
    for i in 0..per_tenant * TENANTS.len() {
        let (queue, _) = TENANTS[i % TENANTS.len()];
        let dax = montage
            .dax_source()
            .replace("work/", &format!("u{i}/work/"))
            .replace("out/", &format!("u{i}/out/"));
        let source = parse_dax(&dax).map_err(|e| e.to_string())?;
        ids.push(rt.submit(
            Box::new(source),
            montage_config(seed + i as u64).with_queue(queue),
            ProvDb::new(),
        ));
    }
    let reports = rt.run_to_completion();
    for &idx in &ids {
        if let Some(e) = rt.error_of(idx) {
            return Err(e.to_string());
        }
    }
    let batch_secs = reports.iter().map(|r| r.t_finish).fold(0.0f64, f64::max);

    // Every allocation round emits one Usage audit row per leaf, in leaf
    // definition order; a round is *contended* when every tenant holds a
    // genuine backlog AND its instantaneous fair share sits at its full
    // weight entitlement — i.e. demand saturates the split, so the 2:1
    // target actually applies. Phase-start rounds where a tenant's demand
    // is still ramping get their surplus redistributed by the fair-share
    // calculator; averaging those in would measure demand, not fairness.
    const MIN_BACKLOG: u64 = 4;
    let nq = TENANTS.len();
    let total_weight: f64 = TENANTS.iter().map(|&(_, w)| w).sum();
    let entitlement: Vec<f64> = TENANTS.iter().map(|&(_, w)| w / total_weight).collect();
    let (sums, contended_rounds) = tracer.with_queue_audits(|rows| {
        let usage: Vec<_> = rows
            .iter()
            .filter(|r| r.kind == QueueEventKind::Usage)
            .collect();
        let mut sums = vec![(0.0f64, 0.0f64, 0.0f64); nq]; // (fair, share, vcores)
        let mut rounds = 0usize;
        for chunk in usage.chunks(nq) {
            if chunk.len() < nq
                || !chunk
                    .iter()
                    .enumerate()
                    .all(|(i, r)| r.pending >= MIN_BACKLOG && r.fair_share >= entitlement[i] - 5e-3)
            {
                continue;
            }
            rounds += 1;
            for (i, r) in chunk.iter().enumerate() {
                sums[i].0 += r.fair_share;
                sums[i].1 += r.share;
                sums[i].2 += r.used_vcores as f64;
            }
        }
        (sums, rounds)
    });
    if contended_rounds == 0 {
        return Err("fairness sweep never reached two-tenant contention".to_string());
    }
    let n = contended_rounds as f64;
    let queues: Vec<FairnessQueue> = TENANTS
        .iter()
        .zip(&sums)
        .map(|(&(name, weight), &(fair, share, vcores))| FairnessQueue {
            queue: name.to_string(),
            weight,
            mean_fair: fair / n,
            mean_share: share / n,
            mean_vcores: vcores / n,
        })
        .collect();
    let share_ratio = queues[0].mean_share / queues[1].mean_share.max(f64::MIN_POSITIVE);
    Ok(FairnessSweep {
        queues,
        contended_rounds,
        share_ratio,
        preemptions: tracer.counter_value("rm.queue_preemptions"),
        batch_secs,
    })
}

/// Renders the fairness sweep.
pub fn render_fairness(sweep: &FairnessSweep) -> String {
    let body: Vec<Vec<String>> = sweep
        .queues
        .iter()
        .map(|q| {
            vec![
                q.queue.clone(),
                format!("{:.1}", q.weight),
                format!("{:.3}", q.mean_fair),
                format!("{:.3}", q.mean_share),
                format!("{:.2}", q.mean_vcores),
            ]
        })
        .collect();
    let table = crate::experiments::common::render_table(
        &["queue", "weight", "fair share", "mean share", "mean vcores"],
        &body,
    );
    format!(
        "{table}\ncontended rounds: {}; share ratio a:b = {:.2} (weights 2.0:1.0); \
         preemptions: {}; batch: {:.1}s\n",
        sweep.contended_rounds, sweep.share_ratio, sweep.preemptions, sweep.batch_secs
    )
}

/// Sweeps concurrency levels.
pub fn run(workers: usize, levels: &[usize], seed: u64) -> Result<Vec<MultiwfPoint>, String> {
    levels
        .iter()
        .map(|&k| run_level(workers, k, seed))
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[MultiwfPoint]) -> String {
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workflows.to_string(),
                format!("{:.1}", p.concurrent_secs),
                format!("{:.1}", p.sequential_secs),
                format!("{:.2}x", p.speedup()),
            ]
        })
        .collect();
    crate::experiments::common::render_table(
        &["workflows", "concurrent (s)", "sequential (s)", "speedup"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_ams_beat_sequential_submission() {
        // Montage's tail phases leave workers idle; co-scheduled AMs fill
        // the gaps, so 3 concurrent workflows finish well before 3
        // sequential ones.
        let point = run_level(11, 3, 77).unwrap();
        assert!(
            point.speedup() > 1.3,
            "concurrent {:.0}s vs sequential {:.0}s",
            point.concurrent_secs,
            point.sequential_secs
        );
        // And concurrency costs less than perfect packing would save:
        // sanity bound against overlap accounting bugs.
        assert!(point.concurrent_secs * 3.0 > point.sequential_secs);
    }

    #[test]
    fn fairness_shares_follow_two_to_one_weights() {
        let sweep = run_fairness(16, 4, 5).unwrap();
        assert!(
            sweep.contended_rounds > 30,
            "not enough contention to measure: {} rounds",
            sweep.contended_rounds
        );
        // Steady-state shares within 10% of the 2:1 weight ratio.
        assert!(
            (1.8..=2.2).contains(&sweep.share_ratio),
            "share ratio {:.3} strays from 2:1 (a {:.3}, b {:.3})",
            sweep.share_ratio,
            sweep.queues[0].mean_share,
            sweep.queues[1].mean_share
        );
        // Both tenants near their fair share, not just near each other.
        for q in &sweep.queues {
            assert!(
                (q.mean_share - q.mean_fair).abs() < 0.1,
                "queue {} at {:.3} vs fair {:.3}",
                q.queue,
                q.mean_share,
                q.mean_fair
            );
        }
    }

    #[test]
    fn fairness_sweep_is_deterministic() {
        let a = render_fairness(&run_fairness(8, 2, 9).unwrap());
        let b = render_fairness(&run_fairness(8, 2, 9).unwrap());
        assert_eq!(a, b, "same seed must render byte-identically");
    }
}
