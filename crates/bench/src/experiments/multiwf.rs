//! Supplementary experiment: per-workflow AM instances under
//! multi-tenancy.
//!
//! The paper argues (§3.1) that "having one dedicated AM per workflow
//! results in a distribution of the workload associated with workflow
//! execution management and is therefore required to fully unlock the
//! scalability potential provided by Hadoop". This harness submits `k`
//! identical Montage workflows to one cluster — each getting its own AM,
//! exactly as the Hi-WAY client would — and compares the batch makespan
//! against running them back to back.

use hiway_core::{HiwayConfig, SchedulerPolicy};
use hiway_lang::dax::parse_dax;
use hiway_provdb::ProvDb;
use hiway_sim::NodeSpec;
use hiway_workloads::montage::MontageParams;
use hiway_workloads::profiles;
use hiway_yarn::Resource;

/// Result of one concurrency level.
#[derive(Clone, Debug)]
pub struct MultiwfPoint {
    pub workflows: usize,
    /// Makespan of the whole batch submitted concurrently.
    pub concurrent_secs: f64,
    /// Sum of makespans when run one after another.
    pub sequential_secs: f64,
}

impl MultiwfPoint {
    pub fn speedup(&self) -> f64 {
        self.sequential_secs / self.concurrent_secs
    }
}

fn montage_config(seed: u64) -> HiwayConfig {
    HiwayConfig {
        container_resource: Resource::new(1, 2048),
        scheduler: SchedulerPolicy::DataAware,
        seed,
        write_trace: false,
        ..HiwayConfig::default()
    }
}

/// Runs `k` Montage instances concurrently (one AM each) and sequentially
/// on a fresh `workers`-node cluster, returning both makespans.
pub fn run_level(workers: usize, k: usize, seed: u64) -> Result<MultiwfPoint, String> {
    let montage = MontageParams::default();

    // Concurrent: k AMs share the cluster.
    let concurrent_secs = {
        let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
        for (path, size) in montage.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let mut rt = deployment.runtime;
        let mut ids = Vec::new();
        for i in 0..k {
            // Each run writes under its own prefix (distinct users);
            // the raw input images stay shared.
            let dax = montage
                .dax_source()
                .replace("work/", &format!("u{i}/work/"))
                .replace("out/", &format!("u{i}/out/"));
            let source = parse_dax(&dax).map_err(|e| e.to_string())?;
            ids.push(rt.submit(
                Box::new(source),
                montage_config(seed + i as u64),
                ProvDb::new(),
            ));
        }
        let reports = rt.run_to_completion();
        for &idx in &ids {
            if let Some(e) = rt.error_of(idx) {
                return Err(e.to_string());
            }
        }
        reports.iter().map(|r| r.t_finish).fold(0.0f64, f64::max)
    };

    // Sequential: fresh cluster per run, makespans summed.
    let mut sequential_secs = 0.0;
    for i in 0..k {
        let mut deployment = profiles::ec2_cluster(workers, &NodeSpec::m3_large("proto"), seed);
        for (path, size) in montage.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
        let mut rt = deployment.runtime;
        let idx = rt.submit(
            Box::new(source),
            montage_config(seed + i as u64),
            ProvDb::new(),
        );
        let reports = rt.run_to_completion();
        if let Some(e) = rt.error_of(idx) {
            return Err(e.to_string());
        }
        sequential_secs += reports[idx].runtime_secs();
    }

    Ok(MultiwfPoint {
        workflows: k,
        concurrent_secs,
        sequential_secs,
    })
}

/// Sweeps concurrency levels.
pub fn run(workers: usize, levels: &[usize], seed: u64) -> Result<Vec<MultiwfPoint>, String> {
    levels
        .iter()
        .map(|&k| run_level(workers, k, seed))
        .collect()
}

/// Renders the sweep.
pub fn render(points: &[MultiwfPoint]) -> String {
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workflows.to_string(),
                format!("{:.1}", p.concurrent_secs),
                format!("{:.1}", p.sequential_secs),
                format!("{:.2}x", p.speedup()),
            ]
        })
        .collect();
    crate::experiments::common::render_table(
        &["workflows", "concurrent (s)", "sequential (s)", "speedup"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_ams_beat_sequential_submission() {
        // Montage's tail phases leave workers idle; co-scheduled AMs fill
        // the gaps, so 3 concurrent workflows finish well before 3
        // sequential ones.
        let point = run_level(11, 3, 77).unwrap();
        assert!(
            point.speedup() > 1.3,
            "concurrent {:.0}s vs sequential {:.0}s",
            point.concurrent_secs,
            point.sequential_secs
        );
        // And concurrency costs less than perfect packing would save:
        // sanity bound against overlap accounting bugs.
        assert!(point.concurrent_secs * 3.0 > point.sequential_secs);
    }
}
