//! Ablations of Hi-WAY's design choices (beyond the paper's figures).
//!
//! DESIGN.md calls out three load-bearing decisions; each ablation
//! switches one off and measures the cost on a representative workload:
//!
//! 1. **Data-aware vs FCFS selection** on the switch-constrained local
//!    cluster (the Figure 4 mechanism, isolated from the Tez comparison).
//! 2. **Adaptive HEFT vs static round-robin** on the heterogeneous
//!    cluster (isolating the value of provenance-driven placement from
//!    the generic benefit of static planning).
//! 3. **Tailored vs uniform containers** (the paper's §5 future work) on
//!    a mixed multi-/single-threaded workload.

use hiway_core::{HiwayConfig, SchedulerPolicy};
use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_lang::dax::parse_dax;
use hiway_provdb::ProvDb;
use hiway_sim::{NodeId, NodeSpec};
use hiway_workloads::montage::MontageParams;
use hiway_workloads::profiles;
use hiway_workloads::snv::SnvParams;
use hiway_yarn::Resource;

use crate::experiments::common::run_one;

/// One ablation outcome.
#[derive(Clone, Debug)]
pub struct AblationRow {
    pub name: &'static str,
    pub baseline_label: &'static str,
    pub baseline_secs: f64,
    pub variant_label: &'static str,
    pub variant_secs: f64,
}

impl AblationRow {
    pub fn speedup(&self) -> f64 {
        self.baseline_secs / self.variant_secs
    }
}

/// Ablation 1: scheduler data-awareness under a congested switch.
pub fn data_awareness(seed: u64) -> Result<AblationRow, String> {
    let run = |policy: SchedulerPolicy| -> Result<f64, String> {
        let snv = SnvParams::fig4(12);
        let mut deployment = profiles::local_cluster(12, seed);
        for node in 0..12 {
            deployment
                .runtime
                .cluster
                .rm
                .set_capacity(NodeId(node as u32), Resource::new(8, 8 * 1024));
        }
        for (path, size) in snv.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let source = CuneiformWorkflow::parse("snv", &snv.cuneiform_source(), seed)
            .map_err(|e| e.to_string())?;
        let config = HiwayConfig {
            container_resource: Resource::new(1, 1024),
            scheduler: policy,
            seed,
            write_trace: false,
            ..HiwayConfig::default()
        };
        run_one(
            &mut deployment.runtime,
            Box::new(source),
            config,
            ProvDb::new(),
        )
    };
    Ok(AblationRow {
        name: "scheduler data-awareness (96 containers, 1 GbE switch)",
        baseline_label: "fcfs",
        baseline_secs: run(SchedulerPolicy::Fcfs)?,
        variant_label: "data-aware",
        variant_secs: run(SchedulerPolicy::DataAware)?,
    })
}

/// Ablation 2: provenance-driven HEFT vs static round-robin on the
/// heterogeneous (stressed) cluster, both with warm provenance.
pub fn adaptive_estimates(seed: u64) -> Result<AblationRow, String> {
    let montage = MontageParams::default();
    let run = |policy: SchedulerPolicy| -> Result<f64, String> {
        let shared_db = ProvDb::new();
        let mut last = 0.0;
        // Three consecutive runs; the third has warm estimates.
        for k in 0..3 {
            let mut deployment = profiles::ec2_cluster(11, &NodeSpec::m3_large("proto"), seed + k);
            let workers = deployment.worker_ids();
            for (i, &level) in [1u32, 2, 3, 4, 6].iter().enumerate() {
                deployment
                    .runtime
                    .cluster
                    .add_cpu_stress(workers[1 + i], level);
                deployment
                    .runtime
                    .cluster
                    .add_disk_stress(workers[6 + i], level);
            }
            for (path, size) in montage.input_files() {
                deployment.runtime.cluster.prestage(&path, size);
            }
            let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
            let config = HiwayConfig {
                container_resource: Resource::new(1, 2048),
                scheduler: policy,
                seed: seed + k,
                write_trace: false,
                ..HiwayConfig::default()
            };
            last = run_one(
                &mut deployment.runtime,
                Box::new(source),
                config,
                shared_db.clone(),
            )?;
        }
        Ok(last)
    };
    Ok(AblationRow {
        name: "adaptive estimates (heterogeneous cluster, warm provenance)",
        baseline_label: "round-robin",
        baseline_secs: run(SchedulerPolicy::RoundRobin)?,
        variant_label: "heft",
        variant_secs: run(SchedulerPolicy::Heft)?,
    })
}

/// Ablation 3: tailored containers (§5 future work) on the SNV pipeline,
/// whose tool mix spans 1-thread (ANNOVAR), 4-thread (SAMtools), and
/// 8-thread (Bowtie 2, VarScan) tasks — exactly the under-utilization the
/// paper's future-work paragraph describes.
pub fn tailored_containers(seed: u64) -> Result<AblationRow, String> {
    let snv = SnvParams::fig4(4);
    let run = |tailored: bool| -> Result<f64, String> {
        let mut deployment = profiles::ec2_cluster(3, &NodeSpec::c3_2xlarge("proto"), seed);
        for (path, size) in snv.input_files() {
            deployment.runtime.cluster.prestage(&path, size);
        }
        let source = CuneiformWorkflow::parse("snv", &snv.cuneiform_source(), seed)
            .map_err(|e| e.to_string())?;
        let mut config = profiles::whole_node_config(&NodeSpec::c3_2xlarge("proto"));
        if tailored {
            config.tailored_containers = true;
            config.multithread_full_node = false;
        }
        config.seed = seed;
        config.write_trace = false;
        run_one(
            &mut deployment.runtime,
            Box::new(source),
            config,
            ProvDb::new(),
        )
    };
    Ok(AblationRow {
        name: "container sizing (SNV, mixed thread counts, 3 nodes)",
        baseline_label: "uniform whole-node",
        baseline_secs: run(false)?,
        variant_label: "tailored",
        variant_secs: run(true)?,
    })
}

/// Runs all three ablations.
pub fn run(seed: u64) -> Result<Vec<AblationRow>, String> {
    Ok(vec![
        data_awareness(seed)?,
        adaptive_estimates(seed)?,
        tailored_containers(seed)?,
    ])
}

/// Renders the ablation table.
pub fn render(rows: &[AblationRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{} {:.1}s", r.baseline_label, r.baseline_secs),
                format!("{} {:.1}s", r.variant_label, r.variant_secs),
                format!("{:.2}x", r.speedup()),
            ]
        })
        .collect();
    crate::experiments::common::render_table(&["ablation", "baseline", "variant", "speedup"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_awareness_pays_off() {
        let row = data_awareness(3).unwrap();
        assert!(row.speedup() > 1.0, "{row:?}");
    }

    #[test]
    fn adaptive_estimates_pay_off() {
        let row = adaptive_estimates(5).unwrap();
        assert!(row.speedup() > 1.0, "{row:?}");
    }

    #[test]
    fn tailored_containers_pay_off() {
        let row = tailored_containers(7).unwrap();
        assert!(row.speedup() > 1.0, "{row:?}");
    }
}
