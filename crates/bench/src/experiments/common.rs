//! Shared plumbing for the experiment harness.

use hiway_core::driver::Runtime;
use hiway_core::HiwayConfig;
use hiway_lang::ir::{StaticWorkflow, WorkflowSource};
use hiway_provdb::ProvDb;

/// Materializes any fully-static workflow source into a
/// [`StaticWorkflow`] — used to hand the same task graph to the baseline
/// engines (the paper re-implemented the SNV workflow in Tez by hand; we
/// reuse the unfolded task list).
pub fn materialize(mut source: Box<dyn WorkflowSource>) -> Result<StaticWorkflow, String> {
    let tasks = source.initial_tasks().map_err(|e| e.to_string())?;
    if !source.is_complete() {
        return Err(format!(
            "workflow '{}' is iterative and cannot be materialized",
            source.name()
        ));
    }
    Ok(StaticWorkflow::new(
        source.name().to_string(),
        source.language(),
        tasks,
    ))
}

/// Submits one workflow on a prepared runtime, runs it to completion, and
/// returns its runtime in (virtual) seconds.
pub fn run_one(
    runtime: &mut Runtime,
    source: Box<dyn WorkflowSource>,
    config: HiwayConfig,
    db: ProvDb,
) -> Result<f64, String> {
    let idx = runtime.submit(source, config, db);
    let reports = runtime.run_to_completion();
    if let Some(err) = runtime.error_of(idx) {
        return Err(err.to_string());
    }
    Ok(reports[idx].runtime_secs())
}

/// Fans independent jobs across OS threads (`std::thread::scope`) and
/// returns results in submission order, so a parallel sweep renders byte
/// for byte like the sequential one. Jobs are pulled from a shared queue
/// (cells of a sweep differ wildly in cost — a 576-container Figure 4 run
/// dwarfs a 72-container one). `HIWAY_BENCH_THREADS=1` forces sequential
/// execution; unset, one thread per available core.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::env::var("HIWAY_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let queue: std::sync::Mutex<Vec<(usize, T)>> =
        std::sync::Mutex::new(items.into_iter().enumerate().collect());
    let results: std::sync::Mutex<Vec<(usize, R)>> = std::sync::Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((idx, item)) = job else { break };
                let r = f(item);
                results.lock().expect("results lock").push((idx, r));
            });
        }
    });
    let mut out = results.into_inner().expect("results lock");
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Renders a simple aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hiway_workloads::snv::SnvParams;

    #[test]
    fn materialize_static_cuneiform() {
        let params = SnvParams::fig4(2);
        let wf =
            hiway_lang::cuneiform::CuneiformWorkflow::parse("snv", &params.cuneiform_source(), 1)
                .unwrap();
        let static_wf = materialize(Box::new(wf)).unwrap();
        assert_eq!(static_wf.tasks.len(), params.expected_tasks());
        static_wf.validate().unwrap();
    }

    #[test]
    fn materialize_rejects_iterative() {
        let params = hiway_workloads::kmeans::KmeansParams::default();
        let wf = hiway_lang::cuneiform::CuneiformWorkflow::parse(
            "kmeans",
            &params.cuneiform_source(),
            1,
        )
        .unwrap();
        assert!(materialize(Box::new(wf)).is_err());
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["workers", "runtime"],
            &[
                vec!["1".into(), "340.1".into()],
                vec!["128".into(), "353.4".into()],
            ],
        );
        assert!(t.contains("workers"));
        assert!(t.lines().count() == 4);
    }
}
