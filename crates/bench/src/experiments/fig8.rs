//! Figure 8: TRAPLINE RNA-seq on Hi-WAY vs Galaxy CloudMan.
//!
//! The paper runs the TRAPLINE Galaxy workflow on 1–6 c3.2xlarge nodes,
//! one task per node, five repetitions per size, and finds that "across
//! all of the tested cluster sizes… Hi-WAY outperformed Galaxy CloudMan
//! by at least 25 %", attributing the difference to Hi-WAY using the
//! workers' transient local SSDs (HDFS + container scratch) while
//! CloudMan stores everything on a shared network-attached EBS volume.

use hiway_core::SchedulerPolicy;
use hiway_lang::galaxy::parse_galaxy;
use hiway_provdb::ProvDb;
use hiway_sim::NodeSpec;
use hiway_workloads::baseline::run_cloudman;
use hiway_workloads::profiles;
use hiway_workloads::rnaseq::RnaseqParams;

use crate::experiments::common::{self, run_one};
use crate::stats::Summary;

/// One cluster size.
#[derive(Clone, Debug)]
pub struct Fig8Point {
    pub nodes: usize,
    pub hiway_mins: Summary,
    pub cloudman_mins: Summary,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig8Params {
    pub node_counts: Vec<usize>,
    pub runs: usize,
}

impl Default for Fig8Params {
    fn default() -> Fig8Params {
        Fig8Params {
            node_counts: vec![1, 2, 3, 4, 5, 6],
            runs: 5,
        }
    }
}

/// Runs the comparison. Each (cluster size, repetition) cell is seeded
/// independently and runs on its own thread; results merge in sweep order.
pub fn run(params: &Fig8Params) -> Result<Vec<Fig8Point>, String> {
    let rnaseq = RnaseqParams::default();
    let mut jobs = Vec::new();
    for &nodes in &params.node_counts {
        for r in 0..params.runs {
            jobs.push((nodes, r));
        }
    }
    let cells = common::par_map(jobs, |(nodes, r)| {
        let seed = nodes as u64 * 1000 + r as u64;
        let h = run_hiway(&rnaseq, nodes, seed)? / 60.0;
        let c = run_cloudman_baseline(&rnaseq, nodes, seed)? / 60.0;
        Ok::<(f64, f64), String>((h, c))
    });
    let mut points = Vec::new();
    let mut cells = cells.into_iter();
    for &nodes in &params.node_counts {
        let mut hiway = Vec::new();
        let mut cloudman = Vec::new();
        for _ in 0..params.runs {
            let (h, c) = cells.next().expect("one cell per (size, run)")?;
            hiway.push(h);
            cloudman.push(c);
        }
        points.push(Fig8Point {
            nodes,
            hiway_mins: Summary::of(&hiway),
            cloudman_mins: Summary::of(&cloudman),
        });
    }
    Ok(points)
}

fn run_hiway(rnaseq: &RnaseqParams, nodes: usize, seed: u64) -> Result<f64, String> {
    let mut deployment = profiles::ec2_cluster(nodes, &NodeSpec::c3_2xlarge("proto"), seed);
    for (path, size) in rnaseq.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let source = parse_galaxy(
        &rnaseq.galaxy_json(),
        &rnaseq.input_bindings(),
        &rnaseq.tool_profiles(),
    )
    .map_err(|e| e.to_string())?;
    // One task per node: the paper configured both systems this way
    // because several TRAPLINE tools need most of the node's memory.
    let mut config = profiles::whole_node_config(&NodeSpec::c3_2xlarge("proto"));
    config.scheduler = SchedulerPolicy::DataAware;
    config.seed = seed;
    config.write_trace = false;
    run_one(
        &mut deployment.runtime,
        Box::new(source),
        config,
        ProvDb::new(),
    )
}

fn run_cloudman_baseline(rnaseq: &RnaseqParams, nodes: usize, seed: u64) -> Result<f64, String> {
    let (mut cluster, ebs) =
        profiles::cloudman_cluster(nodes, &NodeSpec::c3_2xlarge("proto"), seed);
    // CloudMan keeps workflow data on the shared volume.
    for (path, size) in rnaseq.input_files() {
        cluster.register_external_file(&path, ebs, size);
    }
    let workflow = parse_galaxy(
        &rnaseq.galaxy_json(),
        &rnaseq.input_bindings(),
        &rnaseq.tool_profiles(),
    )
    .map_err(|e| e.to_string())?;
    let report = run_cloudman(&mut cluster, workflow, ebs)?;
    Ok(report.runtime_secs)
}

/// Renders the figure as a text table.
pub fn render(points: &[Fig8Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                format!("{:.2}", p.hiway_mins.mean),
                format!("{:.2}", p.cloudman_mins.mean),
                format!(
                    "{:.0}%",
                    (p.cloudman_mins.mean / p.hiway_mins.mean - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    crate::experiments::common::render_table(
        &[
            "nodes",
            "Hi-WAY (min)",
            "CloudMan (min)",
            "CloudMan overhead",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hiway_beats_cloudman_by_25_percent() {
        let params = Fig8Params {
            node_counts: vec![1, 6],
            runs: 1,
        };
        let points = run(&params).unwrap();
        for p in &points {
            assert!(
                p.cloudman_mins.mean >= p.hiway_mins.mean * 1.25,
                "{} nodes: hi-way {:.1} vs cloudman {:.1}",
                p.nodes,
                p.hiway_mins.mean,
                p.cloudman_mins.mean
            );
        }
        // Both systems speed up with more nodes (parallelism 6).
        assert!(points[1].hiway_mins.mean < points[0].hiway_mins.mean / 2.0);
        assert!(points[1].cloudman_mins.mean < points[0].cloudman_mins.mean / 2.0);
        // Single-node Hi-WAY lands in the paper's ballpark (232 min).
        assert!(
            (170.0..300.0).contains(&points[0].hiway_mins.mean),
            "{:.1} min",
            points[0].hiway_mins.mean
        );
    }
}
