//! Crash-and-resume experiment: the durable provenance store's memo
//! layer replayed against Montage.
//!
//! Three runs share one on-disk provenance database:
//!
//! 1. **cold** — a fresh store; every invocation executes.
//! 2. **warm resume** — the same workflow re-submitted with `resume`:
//!    every invocation must be memo-satisfied (zero re-executions).
//! 3. **crash resume** — a third run is killed mid-DAG (the process
//!    state is dropped; only committed WAL frames survive) against a
//!    fresh store, then resumed: completed invocations splice in as memo
//!    hits, the remainder execute.
//!
//! Every number printed is virtual-time or a count, and the output
//! digests prove byte-identical results — the rendering is deterministic
//! and gated by CI against `results/resume.txt`.

use std::path::Path;

use hiway_core::cluster::Cluster;
use hiway_core::config::{HiwayConfig, SchedulerPolicy};
use hiway_core::driver::Runtime;
use hiway_lang::dax::parse_dax;
use hiway_provdb::ProvDb;
use hiway_sim::{ClusterSpec, NodeSpec, SimTime};
use hiway_workloads::montage::MontageParams;

/// One run's outcome.
#[derive(Clone, Debug)]
pub struct RunPoint {
    pub label: &'static str,
    pub makespan_secs: f64,
    pub executed: usize,
    pub memo_hits: u64,
    pub saved_secs: f64,
    /// Order-independent digest over every `(path, content)` in HDFS.
    pub output_digest: u64,
}

/// The full experiment: cold/warm against one store, crash/resume
/// against another.
#[derive(Clone, Debug)]
pub struct ResumeResult {
    pub tasks: usize,
    pub cold: RunPoint,
    pub warm: RunPoint,
    pub crash_resume: RunPoint,
}

fn cluster(montage: &MontageParams) -> Cluster {
    let spec = ClusterSpec::homogeneous(4, "w", &NodeSpec::m3_large("proto"));
    let mut cluster = Cluster::new(spec, 7);
    for (path, size) in montage.input_files() {
        cluster.prestage(&path, size);
    }
    cluster
}

fn config(db: &Path, resume: bool) -> HiwayConfig {
    HiwayConfig::default()
        .with_scheduler(SchedulerPolicy::Fcfs)
        .with_seed(11)
        .with_provdb_path(db.to_str().expect("utf-8 db path"))
        .with_resume(resume)
}

/// Order-independent digest of the cluster's entire HDFS content: XOR of
/// per-file FNV digests mixed with a path hash. Identical file sets →
/// identical digest, regardless of enumeration order.
fn hdfs_digest(rt: &Runtime) -> u64 {
    let mut acc = 0u64;
    for path in rt.cluster.hdfs.list() {
        let content = rt.cluster.hdfs.content_digest(&path).expect("digest");
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in path.as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
        }
        acc ^= h.wrapping_mul(31).wrapping_add(content);
    }
    acc
}

fn one_run(
    montage: &MontageParams,
    db: &Path,
    resume: bool,
    label: &'static str,
) -> Result<RunPoint, String> {
    let mut rt = Runtime::new(cluster(montage));
    let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
    let wf = rt.submit(Box::new(source), config(db, resume), ProvDb::new());
    let reports = rt.run_to_completion();
    if let Some(err) = rt.error_of(wf) {
        return Err(format!("{label}: {err}"));
    }
    let executed = reports[wf].tasks.iter().filter(|t| t.attempts >= 1).count();
    Ok(RunPoint {
        label,
        makespan_secs: reports[wf].runtime_secs(),
        executed,
        memo_hits: rt.memo_hits(wf),
        saved_secs: rt.memo_saved_secs(wf),
        output_digest: hdfs_digest(&rt),
    })
}

/// Runs the experiment inside `scratch` (two store directories are
/// created below it; the caller owns cleanup).
pub fn run(scratch: &Path) -> Result<ResumeResult, String> {
    let montage = MontageParams::default();
    let tasks = montage.expected_tasks();

    // Cold then warm against the same store.
    let store_a = scratch.join("store-a");
    let cold = one_run(&montage, &store_a, false, "cold")?;
    let warm = one_run(&montage, &store_a, true, "warm resume")?;

    // Crash mid-DAG against a second store, then resume.
    let store_b = scratch.join("store-b");
    {
        let mut rt = Runtime::new(cluster(&montage));
        let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
        let wf = rt.submit(Box::new(source), config(&store_b, false), ProvDb::new());
        if !rt.run_until(SimTime::from_secs(60.0)) {
            return Err("montage finished before the crash point".into());
        }
        if let Some(err) = rt.error_of(wf) {
            return Err(format!("pre-crash run: {err}"));
        }
        // Drop the runtime: the crash. Committed WAL frames survive.
    }
    let crash_resume = one_run(&montage, &store_b, true, "crash resume")?;

    Ok(ResumeResult {
        tasks,
        cold,
        warm,
        crash_resume,
    })
}

/// Deterministic rendering (gated byte-for-byte by CI).
pub fn render(r: &ResumeResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>14}  {:>12}  {:>9}  {:>10}  {:>11}\n",
        "run", "makespan (s)", "executed", "memo hits", "saved (s)"
    ));
    out.push_str(&"-".repeat(66));
    out.push('\n');
    for p in [&r.cold, &r.warm, &r.crash_resume] {
        out.push_str(&format!(
            "{:>14}  {:>12.1}  {:>9}  {:>10}  {:>11.1}\n",
            p.label, p.makespan_secs, p.executed, p.memo_hits, p.saved_secs
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "tasks per run: {}; warm resume re-executed {} of {} invocations\n",
        r.tasks, r.warm.executed, r.tasks
    ));
    out.push_str(&format!(
        "outputs byte-identical: cold==warm {}; cold==crash-resume {} (digest {:016x})\n",
        r.cold.output_digest == r.warm.output_digest,
        r.cold.output_digest == r.crash_resume.output_digest,
        r.cold.output_digest,
    ));
    out
}
