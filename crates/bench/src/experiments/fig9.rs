//! Figure 9: adaptive scheduling of Montage on a heterogeneous cluster.
//!
//! The paper's §4.3 experiment: the Montage DAX workflow on 11 m3.large
//! workers that were made heterogeneous with the Linux `stress` tool —
//! one machine unperturbed, five taxed with increasingly many CPU-bound
//! processes, five with increasingly many disk writers. Each experiment
//! repetition runs the workflow once with FCFS scheduling (the baseline)
//! and 20 times consecutively with HEFT, whose runtime estimates grow
//! richer with every prior run's provenance; provenance is wiped between
//! repetitions.
//!
//! Expected shape: HEFT with *no* provenance performs worse than FCFS
//! (static assignments are fixed even when a better node idles); with one
//! prior run it already wins significantly; by eleven prior runs every
//! task signature has been observed on every node, estimates are
//! complete, and both the median and the variance drop.
//!
//! **Substitution note** (see DESIGN.md): the paper stresses nodes with
//! 1/4/16/64/256 processes. Under Linux CFS autogrouping those loads
//! saturate around a 2–3× effective slowdown (the figure's FCFS-to-best
//! ratio); our kernel models plain processor sharing, where 256 hogs
//! would slow a task ~129×. We therefore use 1/2/3/4/6 hogs, which
//! produce a node-speed ladder of 1×–3.5× — the same effective
//! heterogeneity the paper's cluster exhibited.

use hiway_core::{HiwayConfig, SchedulerPolicy};
use hiway_lang::dax::parse_dax;
use hiway_provdb::ProvDb;
use hiway_sim::NodeSpec;
use hiway_workloads::montage::MontageParams;
use hiway_workloads::profiles;
use hiway_yarn::Resource;

use crate::experiments::common::{self, run_one};
use crate::stats::{welch_t, Summary};

/// Stress levels applied to the five CPU-stressed and five disk-stressed
/// workers (worker 0 stays clean).
pub const STRESS_LEVELS: [u32; 5] = [1, 2, 3, 4, 6];

/// Results: per prior-run count, the HEFT runtimes across repetitions.
#[derive(Clone, Debug)]
pub struct Fig9Result {
    pub fcfs_secs: Vec<f64>,
    /// `heft_secs[k]` holds runtimes of executions with `k` prior runs.
    pub heft_secs: Vec<Vec<f64>>,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct Fig9Params {
    pub workers: usize,
    pub repetitions: usize,
    pub consecutive_heft_runs: usize,
}

impl Default for Fig9Params {
    fn default() -> Fig9Params {
        Fig9Params {
            workers: 11,
            repetitions: 20, // the paper ran 80; 20 keeps the harness quick
            consecutive_heft_runs: 20,
        }
    }
}

/// Builds the stressed deployment and stages the Montage inputs.
fn stressed_deployment(
    params: &Fig9Params,
    montage: &MontageParams,
    seed: u64,
) -> hiway_workloads::profiles::Deployment {
    let mut deployment = profiles::ec2_cluster(params.workers, &NodeSpec::m3_large("proto"), seed);
    let workers = deployment.worker_ids();
    // Worker 0 unperturbed; 1–5 CPU-stressed; 6–10 disk-stressed.
    for (i, &level) in STRESS_LEVELS.iter().enumerate() {
        if let Some(&node) = workers.get(1 + i) {
            deployment.runtime.cluster.add_cpu_stress(node, level);
        }
        if let Some(&node) = workers.get(1 + STRESS_LEVELS.len() + i) {
            deployment.runtime.cluster.add_disk_stress(node, level);
        }
    }
    for (path, size) in montage.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    deployment
}

fn montage_config(policy: SchedulerPolicy, seed: u64) -> HiwayConfig {
    HiwayConfig {
        container_resource: Resource::new(1, 2048),
        scheduler: policy,
        seed,
        write_trace: false,
        ..HiwayConfig::default()
    }
}

/// Runs the experiment. Repetitions are independent (each has its own
/// seed ladder and provenance database) and fan out across threads; the
/// consecutive HEFT runs *within* a repetition share a provenance
/// database and therefore stay sequential.
pub fn run(params: &Fig9Params) -> Result<Fig9Result, String> {
    let montage = MontageParams::default();
    let reps = common::par_map((0..params.repetitions).collect(), |rep| {
        let base_seed = 7_000 + rep as u64 * 97;

        // (i) FCFS baseline, fresh provenance.
        let fcfs = {
            let mut deployment = stressed_deployment(params, &montage, base_seed);
            let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
            run_one(
                &mut deployment.runtime,
                Box::new(source),
                montage_config(SchedulerPolicy::Fcfs, base_seed),
                ProvDb::new(),
            )?
        };

        // (ii) consecutive HEFT runs sharing one provenance database.
        let shared_db = ProvDb::new();
        let mut heft = Vec::with_capacity(params.consecutive_heft_runs);
        for k in 0..params.consecutive_heft_runs {
            let seed = base_seed + 1 + k as u64;
            let mut deployment = stressed_deployment(params, &montage, seed);
            let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
            let secs = run_one(
                &mut deployment.runtime,
                Box::new(source),
                montage_config(SchedulerPolicy::Heft, seed),
                shared_db.clone(),
            )?;
            heft.push(secs);
        }
        Ok::<(f64, Vec<f64>), String>((fcfs, heft))
    });

    let mut fcfs_secs = Vec::new();
    let mut heft_secs: Vec<Vec<f64>> = vec![Vec::new(); params.consecutive_heft_runs];
    for rep in reps {
        let (fcfs, heft) = rep?;
        fcfs_secs.push(fcfs);
        for (k, secs) in heft.into_iter().enumerate() {
            heft_secs[k].push(secs);
        }
    }
    Ok(Fig9Result {
        fcfs_secs,
        heft_secs,
    })
}

/// Renders the figure as a text table.
pub fn render(result: &Fig9Result) -> String {
    let fcfs = Summary::of(&result.fcfs_secs);
    let mut rows = vec![vec![
        "greedy (fcfs)".to_string(),
        format!("{:.1}", fcfs.median),
        format!("{:.1}", fcfs.std_dev),
    ]];
    for (k, sample) in result.heft_secs.iter().enumerate() {
        let s = Summary::of(sample);
        rows.push(vec![
            format!("heft, {k} prior"),
            format!("{:.1}", s.median),
            format!("{:.1}", s.std_dev),
        ]);
    }
    crate::experiments::common::render_table(&["scheduler", "median (s)", "std dev"], &rows)
}

/// The paper's two statistical claims, as checks over a result.
pub fn significance(result: &Fig9Result) -> (f64, f64) {
    let one_prior = result.heft_secs.get(1).cloned().unwrap_or_default();
    let t_one_vs_fcfs = welch_t(&result.fcfs_secs, &one_prior);
    let ten = result.heft_secs.get(10).cloned().unwrap_or_default();
    let eleven = result.heft_secs.get(11).cloned().unwrap_or_default();
    let t_ten_vs_eleven = welch_t(&ten, &eleven);
    (t_one_vs_fcfs, t_ten_vs_eleven)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heft_learns_from_provenance() {
        let params = Fig9Params {
            workers: 11,
            repetitions: 3,
            consecutive_heft_runs: 13,
        };
        let result = run(&params).unwrap();
        let fcfs = Summary::of(&result.fcfs_secs);
        let cold = Summary::of(&result.heft_secs[0]);
        let warm = Summary::of(&result.heft_secs[2]);
        let converged = Summary::of(&result.heft_secs[12]);
        // Cold HEFT (no provenance) is no better than FCFS.
        assert!(
            cold.median >= fcfs.median * 0.95,
            "cold heft {:.1} vs fcfs {:.1}",
            cold.median,
            fcfs.median
        );
        // Warm HEFT beats FCFS.
        assert!(
            warm.median < fcfs.median,
            "warm heft {:.1} vs fcfs {:.1}",
            warm.median,
            fcfs.median
        );
        // Converged estimates are at least as good as warm ones.
        assert!(converged.median <= warm.median * 1.1);
        assert!(
            converged.median < fcfs.median * 0.8,
            "converged {:.1} vs fcfs {:.1}",
            converged.median,
            fcfs.median
        );
    }
}
