//! Figure 4: SNV-calling runtime vs. number of containers, Hi-WAY vs Tez.
//!
//! The paper's first scalability experiment: the variant-calling workflow
//! on a 24-node local cluster behind a single 1 GbE switch, run with 72,
//! 144, 288, and 576 one-core containers. "Scalability beyond 96
//! containers was limited by network bandwidth. … Hi-WAY performs
//! comparably to Tez while network resources are sufficient, yet scales
//! favorably in light of limited network resources due to its data-aware
//! scheduling policy."
//!
//! Container counts are realized exactly as in a YARN deployment: each
//! NodeManager advertises `containers/24` one-core slots.

use hiway_core::{HiwayConfig, SchedulerPolicy};
use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_provdb::ProvDb;
use hiway_sim::NodeId;
use hiway_workloads::baseline::{run_dag, BaselineConfig, Storage};
use hiway_workloads::profiles;
use hiway_workloads::snv::SnvParams;
use hiway_yarn::Resource;

use crate::experiments::common::{self, materialize, run_one};
use crate::stats::Summary;

/// One point of the figure.
#[derive(Clone, Debug)]
pub struct Fig4Point {
    pub containers: u32,
    pub hiway_mins: Summary,
    pub tez_mins: Summary,
}

/// Experiment parameters (defaults follow the paper; shrink for tests).
#[derive(Clone, Debug)]
pub struct Fig4Params {
    pub nodes: usize,
    pub container_counts: Vec<u32>,
    pub samples: usize,
    pub runs: usize,
    /// Uniform scale on all CPU costs (1.0 = paper scale). Shrunk
    /// instances use <1 to preserve the compute-to-network ratio.
    pub cpu_scale: f64,
}

impl Default for Fig4Params {
    fn default() -> Fig4Params {
        Fig4Params {
            nodes: 24,
            container_counts: vec![72, 144, 288, 576],
            samples: 72, // 72 samples × 8 read files = 576 align tasks
            runs: 3,
            cpu_scale: 1.0,
        }
    }
}

/// Runs the sweep. Every (container count, repetition) cell is seeded
/// independently, so the cells fan out across threads; results are merged
/// back in sweep order and the rendered table is identical to a
/// sequential run.
pub fn run(params: &Fig4Params) -> Result<Vec<Fig4Point>, String> {
    let snv = SnvParams::fig4(params.samples).scaled(params.cpu_scale);
    let mut jobs = Vec::new();
    for &containers in &params.container_counts {
        for run_idx in 0..params.runs {
            jobs.push((containers, run_idx));
        }
    }
    let cells = common::par_map(jobs, |(containers, run_idx)| {
        let per_node = (containers as usize / params.nodes).max(1) as u32;
        let seed = 1000 * containers as u64 + run_idx as u64;
        let h = run_hiway(params, &snv, per_node, seed)? / 60.0;
        let t = run_tez_baseline(params, &snv, per_node, seed)? / 60.0;
        Ok::<(f64, f64), String>((h, t))
    });
    let mut points = Vec::new();
    let mut cells = cells.into_iter();
    for &containers in &params.container_counts {
        let mut hiway = Vec::new();
        let mut tez = Vec::new();
        for _ in 0..params.runs {
            let (h, t) = cells.next().expect("one cell per (count, run)")?;
            hiway.push(h);
            tez.push(t);
        }
        points.push(Fig4Point {
            containers,
            hiway_mins: Summary::of(&hiway),
            tez_mins: Summary::of(&tez),
        });
    }
    Ok(points)
}

fn run_hiway(
    params: &Fig4Params,
    snv: &SnvParams,
    containers_per_node: u32,
    seed: u64,
) -> Result<f64, String> {
    let mut deployment = profiles::local_cluster(params.nodes, seed);
    for node in 0..params.nodes {
        deployment.runtime.cluster.rm.set_capacity(
            NodeId(node as u32),
            Resource::new(containers_per_node, containers_per_node as u64 * 1024),
        );
    }
    for (path, size) in snv.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let source = CuneiformWorkflow::parse("snv-fig4", &snv.cuneiform_source(), seed)
        .map_err(|e| e.to_string())?;
    let config = HiwayConfig {
        container_resource: Resource::new(1, 1024),
        scheduler: SchedulerPolicy::DataAware,
        seed,
        write_trace: false, // not measured; avoids huge trace strings
        ..HiwayConfig::default()
    };
    run_one(
        &mut deployment.runtime,
        Box::new(source),
        config,
        ProvDb::new(),
    )
}

fn run_tez_baseline(
    params: &Fig4Params,
    snv: &SnvParams,
    containers_per_node: u32,
    seed: u64,
) -> Result<f64, String> {
    let mut deployment = profiles::local_cluster(params.nodes, seed);
    for (path, size) in snv.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let source = CuneiformWorkflow::parse("snv-fig4", &snv.cuneiform_source(), seed)
        .map_err(|e| e.to_string())?;
    let workflow = materialize(Box::new(source))?;
    let report = run_dag(
        &mut deployment.runtime.cluster,
        workflow,
        BaselineConfig {
            storage: Storage::HdfsLocal,
            slots_per_node: containers_per_node,
            slot_vcores: 1, // one-core containers, like Hi-WAY's
            shuffle_edges: true,
            seed,
            startup_secs: 0.2,
            multithread_full_node: false,
        },
    )?;
    Ok(report.runtime_secs)
}

/// Diagnostic single-point probe returning `(hiway_secs, hiway_net_gb,
/// tez_secs, tez_net_gb)` — network volume measured at the NICs.
pub fn run_probe(params: &Fig4Params, containers: u32) -> Result<(f64, f64, f64, f64), String> {
    let snv = SnvParams::fig4(params.samples).scaled(params.cpu_scale);
    let per_node = (containers as usize / params.nodes).max(1) as u32;
    let seed = 123;
    let (h, hg) = run_hiway_probe(params, &snv, per_node, seed)?;
    let (t, tg) = run_tez_probe(params, &snv, per_node, seed)?;
    Ok((h, hg, t, tg))
}

fn net_gb(runtime: &mut hiway_core::driver::Runtime) -> f64 {
    let n = runtime.cluster.node_count();
    (0..n)
        .map(|i| {
            runtime
                .cluster
                .engine
                .take_usage(NodeId(i as u32))
                .net_out_bytes
        })
        .sum::<f64>()
        / 1.0e9
}

fn run_hiway_probe(
    params: &Fig4Params,
    snv: &SnvParams,
    containers_per_node: u32,
    seed: u64,
) -> Result<(f64, f64), String> {
    let mut deployment = profiles::local_cluster(params.nodes, seed);
    for node in 0..params.nodes {
        deployment.runtime.cluster.rm.set_capacity(
            NodeId(node as u32),
            Resource::new(containers_per_node, containers_per_node as u64 * 1024),
        );
    }
    for (path, size) in snv.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let source = CuneiformWorkflow::parse("snv-fig4", &snv.cuneiform_source(), seed)
        .map_err(|e| e.to_string())?;
    let config = HiwayConfig {
        container_resource: Resource::new(1, 1024),
        scheduler: SchedulerPolicy::DataAware,
        seed,
        write_trace: false,
        ..HiwayConfig::default()
    };
    let secs = run_one(
        &mut deployment.runtime,
        Box::new(source),
        config,
        ProvDb::new(),
    )?;
    Ok((secs, net_gb(&mut deployment.runtime)))
}

fn run_tez_probe(
    params: &Fig4Params,
    snv: &SnvParams,
    containers_per_node: u32,
    seed: u64,
) -> Result<(f64, f64), String> {
    let mut deployment = profiles::local_cluster(params.nodes, seed);
    for (path, size) in snv.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let source = CuneiformWorkflow::parse("snv-fig4", &snv.cuneiform_source(), seed)
        .map_err(|e| e.to_string())?;
    let workflow = materialize(Box::new(source))?;
    let report = run_dag(
        &mut deployment.runtime.cluster,
        workflow,
        BaselineConfig {
            storage: Storage::HdfsLocal,
            slots_per_node: containers_per_node,
            slot_vcores: 1,
            shuffle_edges: true,
            seed: 321,
            startup_secs: 0.2,
            multithread_full_node: false,
        },
    )?;
    Ok((report.runtime_secs, net_gb(&mut deployment.runtime)))
}

/// Renders the figure as a text table.
pub fn render(points: &[Fig4Point]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.containers.to_string(),
                format!("{:.1}", p.hiway_mins.mean),
                format!("{:.1}", p.tez_mins.mean),
                format!("{:.2}x", p.tez_mins.mean / p.hiway_mins.mean),
            ]
        })
        .collect();
    crate::experiments::common::render_table(
        &["containers", "Hi-WAY (min)", "Tez (min)", "Tez/Hi-WAY"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A shrunk instance that still exhibits the crossover: at low
    /// container counts the two engines are comparable; at high counts
    /// the shared switch penalizes Tez's placement-agnostic reads.
    #[test]
    fn data_awareness_wins_when_network_bound() {
        let params = Fig4Params {
            nodes: 6,
            container_counts: vec![6, 24],
            samples: 6,
            runs: 1,
            // Shrinking the cluster shrinks the network volume; scale the
            // CPU down with it to keep the full experiment's
            // compute-to-network balance.
            cpu_scale: 0.05,
        };
        let points = run(&params).unwrap();
        assert_eq!(points.len(), 2);
        let low = &points[0];
        let high = &points[1];
        // More containers must speed both systems up.
        assert!(high.hiway_mins.mean < low.hiway_mins.mean);
        assert!(high.tez_mins.mean < low.tez_mins.mean);
        // At saturation, Hi-WAY holds an advantage.
        assert!(
            high.tez_mins.mean > high.hiway_mins.mean * 1.05,
            "hi-way {:.2} vs tez {:.2}",
            high.hiway_mins.mean,
            high.tez_mins.mean
        );
    }
}
