//! # hiway-bench — regenerating every table and figure of the paper
//!
//! Each experiment of the evaluation (Section 4) is implemented as a
//! library function returning structured results, so the same code backs
//! the `table1`/`fig4`/`table2`/`fig6`/`fig8`/`fig9` binaries, the
//! Criterion benches, and the regression tests. See `EXPERIMENTS.md` at
//! the repository root for paper-vs-measured numbers.
//!
//! | Binary    | Paper artefact | What it sweeps |
//! |-----------|----------------|----------------|
//! | `table1`  | Table 1        | experiment overview |
//! | `fig4`    | Figure 4       | SNV runtime vs container count, Hi-WAY vs Tez |
//! | `table2`  | Table 2 + Fig 5| SNV weak scaling 1→128 workers, cost model |
//! | `fig6`    | Figure 6       | master/worker resource utilization |
//! | `fig8`    | Figure 8       | TRAPLINE on Hi-WAY vs Galaxy CloudMan |
//! | `fig9`    | Figure 9       | Montage: HEFT vs FCFS over provenance warm-up |
//!
//! Supplementary binaries: `ablation`, `multiwf`, `chaos`, `bench_engine`
//! (engine hot-path vs reference), `bench_obs` (tracing-on overhead →
//! `BENCH_obs.json`), and `hiway-trace` (one fully-traced run exported as
//! Perfetto JSON / JSON-lines / text Gantt; see [`trace_run`]).

pub mod engine_bench;
pub mod experiments;
pub mod stats;
pub mod trace_run;

pub use stats::Summary;
