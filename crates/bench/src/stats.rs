//! Small summary-statistics helpers for the experiment harness.

/// Mean / standard deviation / median / extremes of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub median: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample (empty input gives all-zero output).
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            median,
            min: sorted[0],
            max: sorted[n - 1],
        }
    }
}

/// Two-sample Welch t-statistic — the paper reports two-sample t-tests on
/// the Figure 9 transitions ("with a single prior workflow run, HEFT
/// already outperforms FCFS scheduling significantly").
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    let (sa, sb) = (Summary::of(a), Summary::of(b));
    let (na, nb) = (sa.n as f64, sb.n as f64);
    if na < 2.0 || nb < 2.0 {
        return 0.0;
    }
    let va = sa.std_dev.powi(2) * na / (na - 1.0); // sample variance
    let vb = sb.std_dev.powi(2) * nb / (nb - 1.0);
    let se = (va / na + vb / nb).sqrt();
    if se == 0.0 {
        0.0
    } else {
        (sa.mean - sb.mean) / se
    }
}

/// Formats seconds as `MM.M min`.
pub fn mins(secs: f64) -> String {
    format!("{:.1} min", secs / 60.0)
}

/// Formats a byte count with binary units.
pub fn human_bytes(bytes: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        let odd = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.median, 2.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn welch_t_detects_separation() {
        let fast = [10.0, 11.0, 9.5, 10.5];
        let slow = [20.0, 21.0, 19.5, 20.5];
        assert!(welch_t(&slow, &fast) > 10.0);
        assert!(welch_t(&fast, &slow) < -10.0);
        assert_eq!(welch_t(&[1.0], &[2.0, 3.0]), 0.0, "degenerate inputs");
    }

    #[test]
    fn formatting() {
        assert_eq!(mins(90.0), "1.5 min");
        assert_eq!(human_bytes(8.06e9 / 1.0), "7.51 GiB");
        assert_eq!(human_bytes(512.0), "512.00 B");
    }
}
