//! One fully-traced workflow execution, behind the `hiway-trace` binary.
//!
//! Runs Montage on an EC2-profile cluster with the observability layer
//! enabled end to end — engine activity spans, HDFS block counters, RM
//! lifecycle metrics, driver container/phase spans, scheduler audit log,
//! and (at intensity > 0) fault-injection instants — then snapshots the
//! tracer and renders all three exporters. Everything downstream of the
//! seed is deterministic, so two runs with the same [`TraceParams`]
//! produce byte-identical artifacts; CI relies on that.

use hiway_core::faults::{FaultConfig, FaultInjector, FaultPlan};
use hiway_core::{HiwayConfig, SchedulerPolicy};
use hiway_lang::dax::parse_dax;
use hiway_obs::export::{to_gantt, to_jsonl, to_perfetto};
use hiway_obs::Tracer;
use hiway_provdb::ProvDb;
use hiway_sim::NodeSpec;
use hiway_workloads::montage::MontageParams;
use hiway_workloads::profiles;
use hiway_yarn::Resource;

/// What to trace. The defaults are the fixed CI scenario.
#[derive(Clone, Debug)]
pub struct TraceParams {
    pub workers: usize,
    pub seed: u64,
    /// Fault-intensity knob; 0.0 traces a fault-free run, the default
    /// 0.5 makes the fault track worth looking at.
    pub intensity: f64,
    pub scheduler: SchedulerPolicy,
}

impl Default for TraceParams {
    fn default() -> TraceParams {
        TraceParams {
            workers: 8,
            seed: 4242,
            intensity: 0.5,
            scheduler: SchedulerPolicy::DataAware,
        }
    }
}

/// The three rendered artifacts plus a human-readable summary.
#[derive(Clone, Debug)]
pub struct TraceRun {
    /// Chrome trace-event JSON — load at `ui.perfetto.dev`.
    pub perfetto: String,
    /// JSON-lines event log: events, decisions, final metrics.
    pub jsonl: String,
    /// Plain-text per-node Gantt chart.
    pub gantt: String,
    pub summary: String,
}

/// Runs the scenario and renders every exporter.
pub fn run(params: &TraceParams) -> Result<TraceRun, String> {
    let tracer = Tracer::enabled();
    let montage = MontageParams::default();
    let mut deployment =
        profiles::ec2_cluster(params.workers, &NodeSpec::m3_large("proto"), params.seed);
    // Attach before submit so static-plan scheduler decisions are captured.
    deployment.runtime.set_tracer(&tracer);
    for (path, size) in montage.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let source = parse_dax(&montage.dax_source()).map_err(|e| e.to_string())?;
    let config = HiwayConfig {
        container_resource: Resource::new(1, 2048),
        scheduler: params.scheduler,
        speculative_execution: true,
        seed: params.seed,
        write_trace: false,
        ..HiwayConfig::default()
    };
    let idx = deployment
        .runtime
        .submit(Box::new(source), config, ProvDb::new());
    let worker_ids = deployment.worker_ids();
    let fc = FaultConfig {
        recovery_secs: 60.0,
        straggler_secs: 45.0,
        straggler_procs: 8,
        ..FaultConfig::with_intensity(params.seed ^ 0x000f_a417, params.intensity)
    };
    let plan = FaultPlan::generate(&fc, &worker_ids);
    let mut injector = FaultInjector::new(plan, worker_ids);
    injector.set_tracer(&tracer);
    let reports = injector.run(&mut deployment.runtime);
    let report = &reports[idx];

    let data = tracer
        .snapshot()
        .expect("tracer was enabled for the whole run");
    let summary = format!(
        "workload:   montage ({} tasks) · {} workers · seed {} · intensity {:.2}\n\
         scheduler:  {}\n\
         makespan:   {:.1}s virtual ({} infra failures, {} task failures, {} speculative)\n\
         trace:      {} tracks · {} events · {} scheduler decisions · {} faults injected\n",
        report.tasks.len(),
        params.workers,
        params.seed,
        params.intensity,
        report.scheduler,
        report.runtime_secs(),
        report.infra_failures,
        report.task_failures,
        report.speculative_attempts,
        data.tracks.len(),
        data.events.len(),
        data.decisions.len(),
        tracer.counter_value("fault.injected"),
    );
    Ok(TraceRun {
        perfetto: to_perfetto(&data),
        jsonl: to_jsonl(&data),
        gantt: to_gantt(&data),
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_run_is_byte_deterministic() {
        let params = TraceParams {
            workers: 4,
            ..TraceParams::default()
        };
        let a = run(&params).unwrap();
        let b = run(&params).unwrap();
        assert_eq!(a.perfetto, b.perfetto);
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.gantt, b.gantt);
        assert_eq!(a.summary, b.summary);
    }

    #[test]
    fn trace_covers_every_layer() {
        let params = TraceParams {
            workers: 4,
            ..TraceParams::default()
        };
        let out = run(&params).unwrap();
        // Per-node tracks with container spans, named by task signature.
        assert!(out.perfetto.contains("\"worker-0\""));
        assert!(out.perfetto.contains("\"ph\":\"X\""));
        assert!(out.perfetto.contains("mProject"));
        // Scheduler audit log made it into both machine formats.
        assert!(out.perfetto.contains("data-aware:select"));
        assert!(out.jsonl.contains("\"type\":\"decision\""));
        // Engine + HDFS + RM metrics land in the JSON-lines tail.
        assert!(out.jsonl.contains("engine.steps"));
        assert!(out.jsonl.contains("hdfs.reads_planned"));
        assert!(out.jsonl.contains("rm.containers_allocated"));
        // Fault instants at intensity 0.5.
        assert!(out.jsonl.contains("\"cat\":\"fault\""));
        // Gantt renders at least one worker timeline.
        assert!(out.gantt.contains("== worker-0 =="));
    }
}
