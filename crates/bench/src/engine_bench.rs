//! Micro-benchmark workload for the simulation engine: a Figure-4-shaped
//! event stream — 24 nodes behind one switch, 576 container-sized task
//! pipelines (stage-in IO → three compute stages → write-back) whose
//! launches the AM staggers over the first minute, plus AM heartbeat
//! timers, infinite background loads, and periodic cancellations. At
//! steady state hundreds of compute activities run concurrently while a
//! handful of IO streams come and go, exactly the mix the Figure 4 sweep
//! produces. Both drivers execute the identical deterministic plan, so
//! the measured ratio is pure engine overhead — this is the workload
//! behind `BENCH_engine.json` and the `engine_hot_path` criterion group.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hiway_sim::reference::ReferenceEngine;
use hiway_sim::{
    Activity, ActivityId, ClusterSpec, Completion, Endpoint, Engine, NodeId, NodeSpec,
};

/// One simulated container's pipeline, pregenerated so both engines see
/// the exact same work.
#[derive(Clone, Debug)]
pub struct TaskPlan {
    pub node: NodeId,
    /// Virtual time at which the AM hands this container its task.
    pub start_at: f64,
    /// `Some(src)`: the stage-in is a remote HDFS read streaming from
    /// `src`'s disk over both NICs; `None`: a local disk read.
    pub remote_src: Option<NodeId>,
    pub read_bytes: f64,
    /// Three consecutive CPU stages (align → sort → call, like SNV).
    pub compute_secs: [f64; 3],
    pub write_bytes: f64,
}

/// Builds the Figure-4-shaped plan: `tasks` pipelines spread round-robin
/// over `nodes` nodes, launches staggered 100 ms apart, every third
/// stage-in remote (the non-local reads data-aware scheduling cannot
/// avoid once the network saturates).
pub fn make_plan(nodes: usize, tasks: usize, seed: u64) -> Vec<TaskPlan> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..tasks)
        .map(|i| {
            let node = NodeId((i % nodes) as u32);
            let remote_src = if i % 3 == 0 {
                Some(NodeId(((i + 7 + rng.gen_range(0..nodes)) % nodes) as u32))
            } else {
                None
            };
            TaskPlan {
                node,
                start_at: i as f64 * 0.1,
                remote_src,
                read_bytes: rng.gen_range(0.2e8..0.8e8),
                compute_secs: [
                    rng.gen_range(5.0..50.0),
                    rng.gen_range(2.0..20.0),
                    rng.gen_range(2.0..20.0),
                ],
                write_bytes: rng.gen_range(0.2e8..0.6e8),
            }
        })
        .collect()
}

/// What one driver run observed: total completions processed (activity +
/// timer events), steps taken, and the final virtual time — the latter two
/// double as an equivalence check between the engines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriveResult {
    pub events: u64,
    pub steps: u64,
    pub virtual_secs: f64,
}

const HEARTBEAT: u64 = u64::MAX;
const BG_CANCEL: u64 = u64::MAX - 1;

/// Pipeline phases, encoded in the tag's top bits: LAUNCH fires the
/// stage-in, STAGE_IN starts compute 0, computes chain to the write-back.
const LAUNCH: u64 = 7;
const STAGE_IN: u64 = 0;
const WRITE_BACK: u64 = 4;

/// Tag: task index in the low bits, phase in the top bits.
fn tag(task: usize, phase: u64) -> u64 {
    (phase << 48) | task as u64
}

/// The drive loop, as a macro because the two engines share their inherent
/// API but no trait. Takes a pre-built engine expression so callers can
/// attach a tracer (or other setup) before driving.
macro_rules! drive_with {
    ($engine:expr, $nodes:expr, $plan:expr) => {{
        let nodes: usize = $nodes;
        let plan: &[TaskPlan] = $plan;
        let mut engine = $engine;

        // Two infinite background loads: never complete, must never be
        // scanned for completions.
        engine.start(
            Activity::Compute {
                node: NodeId(0),
                threads: 0.5,
            },
            f64::INFINITY,
            BG_CANCEL - 2,
        );
        if nodes > 1 {
            engine.start(
                Activity::Compute {
                    node: NodeId(1),
                    threads: 0.5,
                },
                f64::INFINITY,
                BG_CANCEL - 3,
            );
        }

        // The AM staggers container launches over the first minute.
        for (i, t) in plan.iter().enumerate() {
            engine.set_timer_after(t.start_at, tag(i, LAUNCH));
        }
        engine.set_timer_after(3.0, HEARTBEAT);

        let mut done = 0usize;
        let mut events = 0u64;
        let mut steps = 0u64;
        let mut beat = 0u64;
        let mut bg: Option<ActivityId> = None;
        while done < plan.len() {
            let fired = engine.step().expect("work remains");
            steps += 1;
            for completion in fired {
                events += 1;
                let t = match completion {
                    Completion::Activity { tag: t, .. } => t,
                    Completion::Timer { tag: t, .. } => t,
                };
                if t == HEARTBEAT {
                    // AM heartbeat: reschedule, and churn the
                    // cancellation path with a short-lived load.
                    beat += 1;
                    if let Some(id) = bg.take() {
                        engine.cancel(id);
                    }
                    if beat % 8 == 0 {
                        bg = Some(engine.start(
                            Activity::Compute {
                                node: NodeId((beat % nodes as u64) as u32),
                                threads: 2.0,
                            },
                            f64::INFINITY,
                            BG_CANCEL,
                        ));
                    }
                    if done < plan.len() {
                        engine.set_timer_after(3.0, HEARTBEAT);
                    }
                    continue;
                }
                let (task, phase) = ((t & 0xffff_ffff) as usize, t >> 48);
                let p = &plan[task];
                match phase {
                    LAUNCH => {
                        let act = match p.remote_src {
                            Some(src) => Activity::Flow {
                                src: Endpoint::Node(src),
                                dst: Endpoint::Node(p.node),
                                src_disk: true,
                                dst_disk: true,
                            },
                            None => Activity::DiskRead { node: p.node },
                        };
                        engine.start(act, p.read_bytes, tag(task, STAGE_IN));
                    }
                    STAGE_IN => {
                        engine.start(
                            Activity::Compute {
                                node: p.node,
                                threads: 1.0,
                            },
                            p.compute_secs[0],
                            tag(task, 1),
                        );
                    }
                    stage @ (1 | 2) => {
                        engine.start(
                            Activity::Compute {
                                node: p.node,
                                threads: 1.0,
                            },
                            p.compute_secs[stage as usize],
                            tag(task, stage + 1),
                        );
                    }
                    3 => {
                        engine.start(
                            Activity::DiskWrite { node: p.node },
                            p.write_bytes,
                            tag(task, WRITE_BACK),
                        );
                    }
                    _ => done += 1,
                }
            }
        }
        DriveResult {
            events,
            steps,
            virtual_secs: engine.now().as_secs(),
        }
    }};
}

fn bench_spec(nodes: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(nodes, "bench", &NodeSpec::m3_large("p"))
}

/// Drives the plan through the incremental engine.
pub fn drive_incremental(nodes: usize, plan: &[TaskPlan]) -> DriveResult {
    drive_with!(Engine::<u64>::new(bench_spec(nodes)), nodes, plan)
}

/// Drives the plan through the incremental engine with `tracer` attached —
/// the tracing-on side of the `BENCH_obs.json` overhead comparison. With
/// a disabled tracer this is byte-for-byte the [`drive_incremental`] path.
pub fn drive_incremental_traced(
    nodes: usize,
    plan: &[TaskPlan],
    tracer: &hiway_obs::Tracer,
) -> DriveResult {
    let mut engine = Engine::<u64>::new(bench_spec(nodes));
    engine.set_tracer(tracer);
    drive_with!(engine, nodes, plan)
}

/// Drives the plan through the naive reference engine.
pub fn drive_reference(nodes: usize, plan: &[TaskPlan]) -> DriveResult {
    drive_with!(ReferenceEngine::<u64>::new(bench_spec(nodes)), nodes, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two engines must agree on the whole observable outcome of the
    /// benchmark workload (this is also what makes the speedup ratio a
    /// fair comparison: same events, same steps).
    #[test]
    fn bench_workload_is_engine_invariant() {
        let plan = make_plan(6, 48, 42);
        let a = drive_incremental(6, &plan);
        let b = drive_reference(6, &plan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.virtual_secs.to_bits(), b.virtual_secs.to_bits());
        // launch + stage-in + 3 computes + write per task, plus heartbeats
        assert!(a.events as usize >= 6 * 48, "every phase completes");
    }

    /// The tracing-off traced entry point must be indistinguishable from
    /// the plain one (that's the zero-overhead contract), and an enabled
    /// tracer must not change the simulation — only record it.
    #[test]
    fn tracer_does_not_perturb_the_benchmark_workload() {
        let plan = make_plan(4, 24, 7);
        let plain = drive_incremental(4, &plan);
        let off = drive_incremental_traced(4, &plan, &hiway_obs::Tracer::disabled());
        assert_eq!(plain, off);
        let tracer = hiway_obs::Tracer::enabled();
        let on = drive_incremental_traced(4, &plan, &tracer);
        assert_eq!(plain, on);
        assert!(tracer.event_count() > 0, "enabled tracer saw the run");
        assert_eq!(tracer.counter_value("engine.steps"), plain.steps);
    }
}
