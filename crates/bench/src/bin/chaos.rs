//! Regenerates the chaos experiment: Montage under injected faults.
use hiway_bench::experiments::chaos;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        chaos::ChaosParams {
            workers: 6,
            repetitions: 3,
            intensities: vec![0.0, 1.0],
        }
    } else {
        chaos::ChaosParams::default()
    };
    println!(
        "Chaos: Montage on {} workers under seeded fault injection, {} repetitions per intensity\n",
        params.workers, params.repetitions
    );
    match chaos::run(&params) {
        Ok(result) => println!("{}", chaos::render(&result)),
        Err(e) => {
            eprintln!("chaos failed: {e}");
            std::process::exit(1);
        }
    }
}
