//! Regenerates Figure 6: master/worker resource utilization.
use hiway_bench::experiments::fig6;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        fig6::Fig6Params {
            worker_counts: vec![1, 2, 4, 8],
        }
    } else {
        fig6::Fig6Params::default()
    };
    println!("Figure 6: whole-run average utilization of Hadoop master, Hi-WAY AM, and a worker\n");
    match fig6::run(&params) {
        Ok(rows) => println!("{}", fig6::render(&rows)),
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
