//! Engine hot-path benchmark: drives the Figure-4-shaped workload (24
//! nodes, 576 task pipelines) through the incremental engine and the
//! naive reference engine, prints the events/sec comparison, and emits
//! `BENCH_engine.json` for regression tracking.
//!
//! Usage: `bench_engine [--quick] [output.json]`

use std::time::Instant;

use hiway_bench::engine_bench::{drive_incremental, drive_reference, make_plan, DriveResult};

struct Measured {
    result: DriveResult,
    best_secs: f64,
}

fn measure(runs: usize, f: impl Fn() -> DriveResult) -> Measured {
    let result = f(); // warm-up; also the result all timed runs must match
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(r, result, "benchmark run was not deterministic");
        best = best.min(dt);
    }
    Measured {
        result,
        best_secs: best,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    // Figure 4 scale: 24 nodes behind one switch, 576 one-core containers.
    let (nodes, tasks, runs) = if quick { (24, 576, 2) } else { (24, 576, 5) };
    let plan = make_plan(nodes, tasks, 4242);

    println!("engine hot-path benchmark: {nodes} nodes, {tasks} task pipelines");
    let reference = measure(runs, || drive_reference(nodes, &plan));
    println!(
        "  reference:   {:>8.0} events/sec ({} events, {} steps, best of {runs}: {:.3}s)",
        reference.result.events as f64 / reference.best_secs,
        reference.result.events,
        reference.result.steps,
        reference.best_secs,
    );
    let incremental = measure(runs, || drive_incremental(nodes, &plan));
    println!(
        "  incremental: {:>8.0} events/sec ({} events, {} steps, best of {runs}: {:.3}s)",
        incremental.result.events as f64 / incremental.best_secs,
        incremental.result.events,
        incremental.result.steps,
        incremental.best_secs,
    );

    assert_eq!(
        incremental.result, reference.result,
        "engines disagreed on the benchmark workload"
    );
    let ref_eps = reference.result.events as f64 / reference.best_secs;
    let inc_eps = incremental.result.events as f64 / incremental.best_secs;
    let speedup = inc_eps / ref_eps;
    println!("  speedup:     {speedup:.1}x");

    let json = format!(
        "{{\n  \"benchmark\": \"engine_hot_path\",\n  \"workload\": {{\n    \"shape\": \"fig4\",\n    \"nodes\": {nodes},\n    \"task_pipelines\": {tasks},\n    \"events\": {},\n    \"steps\": {},\n    \"virtual_secs\": {:.3}\n  }},\n  \"reference\": {{\n    \"wall_secs\": {:.6},\n    \"events_per_sec\": {:.1}\n  }},\n  \"incremental\": {{\n    \"wall_secs\": {:.6},\n    \"events_per_sec\": {:.1}\n  }},\n  \"speedup\": {:.2}\n}}\n",
        reference.result.events,
        reference.result.steps,
        reference.result.virtual_secs,
        reference.best_secs,
        ref_eps,
        incremental.best_secs,
        inc_eps,
        speedup,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    println!("wrote {out_path}");
}
