//! Regenerates Figure 4: SNV runtime vs container count, Hi-WAY vs Tez.
use hiway_bench::experiments::fig4;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        fig4::Fig4Params {
            nodes: 12,
            container_counts: vec![24, 48, 96, 144],
            samples: 18,
            runs: 1,
            cpu_scale: 0.2,
        }
    } else {
        fig4::Fig4Params::default()
    };
    println!(
        "Figure 4: SNV variant calling on a {}-node local cluster (1 GbE switch), {} runs/point\n",
        params.nodes, params.runs
    );
    match fig4::run(&params) {
        Ok(points) => println!("{}", fig4::render(&points)),
        Err(e) => {
            eprintln!("fig4 failed: {e}");
            std::process::exit(1);
        }
    }
}
