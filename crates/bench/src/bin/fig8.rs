//! Regenerates Figure 8: TRAPLINE RNA-seq, Hi-WAY vs Galaxy CloudMan.
use hiway_bench::experiments::fig8;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        fig8::Fig8Params {
            node_counts: vec![1, 2, 4, 6],
            runs: 1,
        }
    } else {
        fig8::Fig8Params::default()
    };
    println!(
        "Figure 8: TRAPLINE on EC2 c3.2xlarge, one task per node, {} runs/size\n",
        params.runs
    );
    match fig8::run(&params) {
        Ok(points) => println!("{}", fig8::render(&points)),
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
