//! Provenance-store benchmark: append throughput (in-memory vs durable
//! WAL), indexed vs scan lookups, batched vs per-line import, and
//! recovery time against log size. Emits `BENCH_provdb.json` for
//! regression tracking.
//!
//! Usage: `bench_provdb [--quick] [output.json]`

use std::path::PathBuf;
use std::time::Instant;

use hiway_format::json::Json;
use hiway_provdb::ProvDb;

/// A provenance-event-shaped document, deterministic in `i`.
fn doc(i: u64) -> Json {
    Json::object()
        .with("event", "task-completed")
        .with(
            "key",
            format!("{:016x}", i.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        )
        .with("name", format!("mProjectPP_{}", i % 17))
        .with("node", format!("w-{}", i % 11))
        .with("makespan", (i % 97) as f64 + 0.5)
        .with(
            "outputs",
            Json::Array(vec![Json::object()
                .with("path", format!("proj/image_{i}.fits"))
                .with("bytes", 4_194_304u64)]),
        )
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hiway-bench-provdb-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Best-of-`runs` wall time of `f`.
fn best_of(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_provdb.json".to_string());

    let (n_docs, n_lookups, runs) = if quick {
        (5_000u64, 2_000u64, 2)
    } else {
        (50_000u64, 20_000u64, 3)
    };
    println!("provenance store benchmark: {n_docs} docs, {n_lookups} lookups, best of {runs}");

    // --- append throughput: in-memory vs durable WAL ---------------------
    let mem_secs = best_of(runs, || {
        let db = ProvDb::new();
        let col = db.collection("events");
        for i in 0..n_docs {
            col.insert(doc(i));
        }
        assert_eq!(col.len() as u64, n_docs);
    });
    let mem_dps = n_docs as f64 / mem_secs;
    println!("  append in-memory: {mem_dps:>9.0} docs/sec ({mem_secs:.3}s)");

    let dir = scratch("append");
    let wal_secs = best_of(runs, || {
        let _ = std::fs::remove_dir_all(&dir);
        let db = ProvDb::open(&dir).expect("open durable");
        let col = db.collection("events");
        for i in 0..n_docs {
            col.insert(doc(i));
        }
        assert_eq!(col.len() as u64, n_docs);
    });
    let wal_dps = n_docs as f64 / wal_secs;
    println!("  append durable:   {wal_dps:>9.0} docs/sec ({wal_secs:.3}s)");

    // --- lookups: hash index vs full scan --------------------------------
    let db = ProvDb::new();
    let col = db.collection("events");
    let mut batch = Vec::with_capacity(n_docs as usize);
    for i in 0..n_docs {
        batch.push(doc(i));
    }
    col.insert_many(batch);
    // Point lookups by unique key — the memo layer's hot path.
    let probe = Json::String(format!(
        "{:016x}",
        4321u64.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    ));
    let scan_secs = best_of(runs, || {
        // No index on "key" yet: find_eq falls back to a full scan.
        let mut total = 0usize;
        for _ in 0..n_lookups / 100 {
            total += col.find_eq("key", &probe).len();
        }
        assert_eq!(total, n_lookups as usize / 100);
    });
    let scan_per = scan_secs / (n_lookups as f64 / 100.0);
    col.create_index("key");
    let index_secs = best_of(runs, || {
        let mut total = 0usize;
        for _ in 0..n_lookups {
            total += col.find_eq("key", &probe).len();
        }
        assert_eq!(total, n_lookups as usize);
    });
    let index_per = index_secs / n_lookups as f64;
    println!(
        "  lookup scan:    {:>9.1} us/op; indexed: {:>7.1} us/op ({:.0}x)",
        scan_per * 1e6,
        index_per * 1e6,
        scan_per / index_per
    );

    // --- import: one batch vs a per-line insert loop ---------------------
    // Pre-parsed so the comparison isolates the insert path (per-line
    // lock + WAL acquisition vs one batch guard), not JSON parsing.
    let parsed: Vec<Json> = col
        .export_jsonl()
        .lines()
        .map(|l| Json::parse(l).expect("own dump"))
        .collect();
    // Store setup/teardown happens outside the timed region — deleting a
    // WAL directory is filesystem noise, not import cost.
    let import_dir = scratch("import");
    let timed_import = |per_line: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let _ = std::fs::remove_dir_all(&import_dir);
            let fresh = ProvDb::open(&import_dir)
                .expect("open durable")
                .collection("events");
            let t0 = Instant::now();
            if per_line {
                // The old import path: re-acquire the locks per line.
                for d in &parsed {
                    fresh.insert(d.clone());
                }
            } else {
                fresh.insert_many(parsed.clone());
            }
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(fresh.len() as u64, n_docs);
        }
        best
    };
    let line_secs = timed_import(true);
    let batch_secs = timed_import(false);
    println!(
        "  import {n_docs} docs: per-line {:.3}s, batched {:.3}s ({:.2}x)",
        line_secs,
        batch_secs,
        line_secs / batch_secs
    );
    // Same comparison with concurrent readers (the provenance store's
    // real situation: memo lookups and scheduler estimate scans run
    // against the collection while a dump imports). Per-line inserts
    // release and re-acquire the write lock between every document, so
    // each scan slips in and stretches the import; the batched path takes
    // the guard once.
    let contended_import = |per_line: bool| -> f64 {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let _ = std::fs::remove_dir_all(&import_dir);
            let fresh = ProvDb::open(&import_dir)
                .expect("open durable")
                .collection("events");
            let stop = AtomicBool::new(false);
            let secs = std::thread::scope(|s| {
                for _ in 0..2 {
                    let reader = fresh.clone();
                    let stop = &stop;
                    let probe = probe.clone();
                    s.spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            let _ = reader.find_eq("key", &probe); // unindexed: full scan
                        }
                    });
                }
                let t0 = Instant::now();
                if per_line {
                    for d in &parsed {
                        fresh.insert(d.clone());
                    }
                } else {
                    fresh.insert_many(parsed.clone());
                }
                let dt = t0.elapsed().as_secs_f64();
                stop.store(true, Ordering::Relaxed);
                dt
            });
            assert_eq!(fresh.len() as u64, n_docs);
            best = best.min(secs);
        }
        best
    };
    let cont_line_secs = contended_import(true);
    let cont_batch_secs = contended_import(false);
    let _ = std::fs::remove_dir_all(&import_dir);
    println!(
        "  import w/ 2 readers: per-line {:.3}s, batched {:.3}s ({:.2}x)",
        cont_line_secs,
        cont_batch_secs,
        cont_line_secs / cont_batch_secs
    );

    // --- recovery time vs log size ---------------------------------------
    let recovery_sizes: Vec<u64> = if quick {
        vec![500, 2_000, 8_000]
    } else {
        vec![2_000, 10_000, 50_000]
    };
    let mut recovery = Vec::new();
    for &size in &recovery_sizes {
        let dir = scratch(&format!("recover-{size}"));
        {
            let db = ProvDb::open(&dir).expect("open durable");
            let col = db.collection("events");
            for i in 0..size {
                col.insert(doc(i));
            }
        }
        let log_bytes: u64 = std::fs::read_dir(&dir)
            .expect("list store")
            .map(|e| e.expect("entry").metadata().expect("meta").len())
            .sum();
        let open_secs = best_of(runs, || {
            let db = ProvDb::open(&dir).expect("recover");
            assert_eq!(db.collection("events").len() as u64, size);
        });
        println!(
            "  recovery: {size:>6} records / {:>9} bytes in {:>7.1} ms",
            log_bytes,
            open_secs * 1e3
        );
        recovery.push((size, log_bytes, open_secs));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let recovery_json: Vec<String> = recovery
        .iter()
        .map(|(size, bytes, secs)| {
            format!(
                "    {{ \"records\": {size}, \"log_bytes\": {bytes}, \"open_secs\": {secs:.6} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"provdb\",\n  \"docs\": {n_docs},\n  \"append\": {{\n    \"in_memory_docs_per_sec\": {mem_dps:.1},\n    \"durable_docs_per_sec\": {wal_dps:.1},\n    \"wal_overhead_frac\": {:.4}\n  }},\n  \"lookup\": {{\n    \"scan_us_per_op\": {:.2},\n    \"indexed_us_per_op\": {:.2},\n    \"speedup\": {:.1}\n  }},\n  \"import\": {{\n    \"per_line_secs\": {line_secs:.6},\n    \"batched_secs\": {batch_secs:.6},\n    \"speedup\": {:.2},\n    \"contended_per_line_secs\": {cont_line_secs:.6},\n    \"contended_batched_secs\": {cont_batch_secs:.6},\n    \"contended_speedup\": {:.2}\n  }},\n  \"recovery\": [\n{}\n  ]\n}}\n",
        wal_secs / mem_secs - 1.0,
        scan_per * 1e6,
        index_per * 1e6,
        scan_per / index_per,
        line_secs / batch_secs,
        cont_line_secs / cont_batch_secs,
        recovery_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_provdb.json");
    println!("wrote {out_path}");
}
