//! Supplementary experiment: concurrent per-workflow AMs vs sequential runs.
use hiway_bench::experiments::multiwf;

fn main() {
    println!("Multi-tenancy: k concurrent Montage workflows, one AM each, 11 workers\n");
    match multiwf::run(11, &[1, 2, 4, 8], 5) {
        Ok(points) => println!("{}", multiwf::render(&points)),
        Err(e) => {
            eprintln!("multiwf failed: {e}");
            std::process::exit(1);
        }
    }
    println!("Fairness: two queues weighted 2:1, 4 Montage workflows each, 16 workers\n");
    match multiwf::run_fairness(16, 4, 5) {
        Ok(sweep) => println!("{}", multiwf::render_fairness(&sweep)),
        Err(e) => {
            eprintln!("fairness sweep failed: {e}");
            std::process::exit(1);
        }
    }
}
