//! Regenerates Table 1 (overview of conducted experiments).
fn main() {
    println!("Table 1: overview of conducted experiments\n");
    println!("{}", hiway_bench::experiments::table1::render());
}
