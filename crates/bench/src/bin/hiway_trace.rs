//! `hiway-trace`: run one fully-traced workflow execution and export the
//! observability artifacts.
//!
//! Usage:
//!   hiway-trace [--workers N] [--seed S] [--intensity X]
//!               [--scheduler fcfs|data-aware|round-robin|heft|adaptive]
//!               [--out-dir DIR]
//!
//! Writes into `--out-dir` (default `.`):
//!   trace.perfetto.json  Chrome trace-event JSON — open at ui.perfetto.dev
//!   trace.events.jsonl   JSON-lines event log (events, decisions, metrics)
//!   trace.gantt.txt      plain-text per-node Gantt chart
//!
//! Output is byte-deterministic for a given flag set; CI runs it twice
//! and diffs.

use std::path::Path;

use hiway_bench::trace_run::{run, TraceParams};
use hiway_core::SchedulerPolicy;

fn parse_scheduler(s: &str) -> SchedulerPolicy {
    match s {
        "fcfs" => SchedulerPolicy::Fcfs,
        "data-aware" => SchedulerPolicy::DataAware,
        "round-robin" => SchedulerPolicy::RoundRobin,
        "heft" => SchedulerPolicy::Heft,
        "adaptive" => SchedulerPolicy::Adaptive,
        other => {
            eprintln!(
                "unknown scheduler {other:?}; expected fcfs|data-aware|round-robin|heft|adaptive"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut params = TraceParams::default();
    let mut out_dir = ".".to_string();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workers" => params.workers = value("--workers").parse().expect("--workers: usize"),
            "--seed" => params.seed = value("--seed").parse().expect("--seed: u64"),
            "--intensity" => {
                params.intensity = value("--intensity").parse().expect("--intensity: f64")
            }
            "--scheduler" => params.scheduler = parse_scheduler(&value("--scheduler")),
            "--out-dir" => out_dir = value("--out-dir"),
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let out = match run(&params) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("trace run failed: {e}");
            std::process::exit(1);
        }
    };
    let dir = Path::new(&out_dir);
    std::fs::create_dir_all(dir).expect("create --out-dir");
    for (file, bytes) in [
        ("trace.perfetto.json", &out.perfetto),
        ("trace.events.jsonl", &out.jsonl),
        ("trace.gantt.txt", &out.gantt),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, bytes).expect("write trace artifact");
        println!("wrote {} ({} bytes)", path.display(), bytes.len());
    }
    print!("{}", out.summary);
    println!("open trace.perfetto.json at https://ui.perfetto.dev");
}
