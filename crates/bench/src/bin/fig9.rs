//! Regenerates Figure 9: Montage with HEFT vs FCFS over a provenance warm-up.
use hiway_bench::experiments::fig9;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        fig9::Fig9Params {
            workers: 11,
            repetitions: 5,
            consecutive_heft_runs: 13,
        }
    } else {
        fig9::Fig9Params::default()
    };
    println!(
        "Figure 9: Montage on 11 heterogeneous (stressed) workers, {} repetitions\n",
        params.repetitions
    );
    match fig9::run(&params) {
        Ok(result) => {
            println!("{}", fig9::render(&result));
            let (t1, t11) = fig9::significance(&result);
            println!("Welch t, FCFS vs HEFT(1 prior run):        {t1:.2}");
            println!("Welch t, HEFT(10 prior) vs HEFT(11 prior): {t11:.2}");
        }
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            std::process::exit(1);
        }
    }
}
