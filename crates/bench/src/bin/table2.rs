//! Regenerates Table 2 and Figure 5: SNV weak scaling, 1→128 workers.
use hiway_bench::experiments::table2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        table2::Table2Params {
            worker_counts: vec![1, 2, 4, 8],
            runs: 1,
        }
    } else {
        table2::Table2Params::default()
    };
    println!(
        "Table 2 / Figure 5: SNV weak scaling on EC2 m3.large, {} runs/rung\n",
        params.runs
    );
    match table2::run(&params) {
        Ok(rows) => println!("{}", table2::render(&rows)),
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}
