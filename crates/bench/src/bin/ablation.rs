//! Runs the three design-choice ablations described in DESIGN.md.
fn main() {
    println!("Ablations of Hi-WAY's design choices\n");
    match hiway_bench::experiments::ablation::run(11) {
        Ok(rows) => println!("{}", hiway_bench::experiments::ablation::render(&rows)),
        Err(e) => {
            eprintln!("ablation failed: {e}");
            std::process::exit(1);
        }
    }
}
