//! Crash-and-resume experiment: cold run, warm resume, and a run killed
//! mid-DAG then resumed, all against durable provenance stores. Output
//! is deterministic (virtual time and counts only — no host paths) and
//! gated byte-for-byte against `results/resume.txt` by CI.

use hiway_bench::experiments::resume;

fn main() {
    println!(
        "Crash-and-resume: Montage on 4 workers, durable provenance store, memoized re-execution\n"
    );
    let scratch = std::env::temp_dir().join(format!("hiway-resume-exp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    match resume::run(&scratch) {
        Ok(result) => println!("{}", resume::render(&result)),
        Err(e) => {
            eprintln!("resume experiment failed: {e}");
            let _ = std::fs::remove_dir_all(&scratch);
            std::process::exit(1);
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
