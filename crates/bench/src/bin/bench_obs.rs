//! Observability-overhead benchmark: drives the Figure-4-shaped engine
//! workload with the tracer disabled and enabled, prints the events/sec
//! comparison, and emits `BENCH_obs.json` for regression tracking. The
//! tracing-off number is the zero-overhead contract: it must stay within
//! noise of `BENCH_engine.json`'s incremental driver.
//!
//! Usage: `bench_obs [--quick] [output.json]`

use std::time::Instant;

use hiway_bench::engine_bench::{drive_incremental_traced, make_plan, DriveResult};
use hiway_obs::Tracer;

struct Measured {
    result: DriveResult,
    best_secs: f64,
    /// Span/instant/counter events the tracer recorded in one run.
    trace_events: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    let (nodes, tasks, runs) = if quick { (24, 576, 2) } else { (24, 576, 5) };
    let plan = make_plan(nodes, tasks, 4242);

    let measure = |enabled: bool| -> Measured {
        let fresh = || {
            if enabled {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            }
        };
        // Warm-up; also the result every timed run must reproduce.
        let result = drive_incremental_traced(nodes, &plan, &fresh());
        let mut best = f64::INFINITY;
        let mut trace_events = 0;
        for _ in 0..runs {
            // Each timed run gets its own buffer so allocation cost is
            // counted every time, not amortized.
            let tracer = fresh();
            let t0 = Instant::now();
            let r = drive_incremental_traced(nodes, &plan, &tracer);
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(r, result, "benchmark run was not deterministic");
            best = best.min(dt);
            trace_events = tracer.event_count();
        }
        Measured {
            result,
            best_secs: best,
            trace_events,
        }
    };

    println!("observability overhead benchmark: {nodes} nodes, {tasks} task pipelines");
    let off = measure(false);
    let off_eps = off.result.events as f64 / off.best_secs;
    println!(
        "  tracing off: {:>8.0} events/sec ({} events, best of {runs}: {:.3}s)",
        off_eps, off.result.events, off.best_secs,
    );
    let on = measure(true);
    let on_eps = on.result.events as f64 / on.best_secs;
    println!(
        "  tracing on:  {:>8.0} events/sec ({} trace events recorded, best of {runs}: {:.3}s)",
        on_eps, on.trace_events, on.best_secs,
    );
    assert_eq!(
        off.result, on.result,
        "tracing changed the simulation outcome"
    );
    let overhead = on.best_secs / off.best_secs - 1.0;
    println!("  overhead:    {:.1}% when enabled", overhead * 100.0);

    let json = format!(
        "{{\n  \"benchmark\": \"obs_overhead\",\n  \"workload\": {{\n    \"shape\": \"fig4\",\n    \"nodes\": {nodes},\n    \"task_pipelines\": {tasks},\n    \"events\": {},\n    \"virtual_secs\": {:.3}\n  }},\n  \"tracing_off\": {{\n    \"wall_secs\": {:.6},\n    \"events_per_sec\": {:.1}\n  }},\n  \"tracing_on\": {{\n    \"wall_secs\": {:.6},\n    \"events_per_sec\": {:.1},\n    \"trace_events\": {}\n  }},\n  \"overhead_frac\": {:.4}\n}}\n",
        off.result.events,
        off.result.virtual_secs,
        off.best_secs,
        off_eps,
        on.best_secs,
        on_eps,
        on.trace_events,
        overhead,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}
