//! Criterion benches: one per paper artefact (scaled down so `cargo
//! bench` completes in minutes — the full-size sweeps live in the
//! `table1`/`fig4`/`table2`/`fig6`/`fig8`/`fig9` binaries), plus
//! microbenchmarks of the simulation kernel and the Cuneiform front-end
//! that the experiments lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hiway_bench::experiments::{fig4, fig6, fig8, fig9, table2};
use hiway_lang::cuneiform::CuneiformWorkflow;
use hiway_lang::ir::WorkflowSource;
use hiway_sim::netfair::{max_min_rates, Constraint, FlowPath};
use hiway_workloads::snv::SnvParams;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_snv_vs_tez");
    group.sample_size(10);
    group.bench_function("6nodes_24containers", |b| {
        b.iter(|| {
            let params = fig4::Fig4Params {
                nodes: 6,
                container_counts: vec![24],
                samples: 6,
                runs: 1,
                cpu_scale: 0.05,
            };
            fig4::run(&params).expect("fig4")
        })
    });
    group.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_weak_scaling");
    group.sample_size(10);
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| table2::run_rung(w, 42).expect("rung").1)
        });
    }
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_utilization");
    group.sample_size(10);
    group.bench_function("sample_two_sizes", |b| {
        b.iter(|| {
            fig6::run(&fig6::Fig6Params {
                worker_counts: vec![1, 2],
            })
            .expect("fig6")
        })
    });
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_trapline");
    group.sample_size(10);
    group.bench_function("1_and_6_nodes", |b| {
        b.iter(|| {
            let params = fig8::Fig8Params {
                node_counts: vec![1, 6],
                runs: 1,
            };
            fig8::run(&params).expect("fig8")
        })
    });
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_adaptive_scheduling");
    group.sample_size(10);
    group.bench_function("1rep_6heft_runs", |b| {
        b.iter(|| {
            let params = fig9::Fig9Params {
                workers: 11,
                repetitions: 1,
                consecutive_heft_runs: 6,
            };
            fig9::run(&params).expect("fig9")
        })
    });
    group.finish();
}

fn bench_kernel_netfair(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_netfair");
    for flows in [32usize, 256] {
        // A star topology: per-flow src/dst NIC constraints + one switch.
        let mut constraints = vec![Constraint { capacity: 125.0e6 }];
        let mut paths = Vec::new();
        for i in 0..flows {
            constraints.push(Constraint { capacity: 87.5e6 });
            constraints.push(Constraint { capacity: 87.5e6 });
            paths.push(FlowPath {
                constraints: vec![0, 1 + 2 * i, 2 + 2 * i],
                rate_cap: None,
            });
        }
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| max_min_rates(&constraints, &paths))
        });
    }
    group.finish();
}

fn bench_engine_hot_path(c: &mut Criterion) {
    use hiway_bench::engine_bench::{drive_incremental, drive_reference, make_plan};
    let mut group = c.benchmark_group("engine_hot_path");
    group.sample_size(10);
    // The Figure 4 shape: 24 nodes, 576 task pipelines. The incremental
    // engine must process the identical event stream ≥5x faster than the
    // naive recompute-everything engine (see BENCH_engine.json).
    let plan = make_plan(24, 576, 4242);
    group.bench_function("incremental_24n_576t", |b| {
        b.iter(|| drive_incremental(24, &plan))
    });
    group.bench_function("reference_24n_576t", |b| {
        b.iter(|| drive_reference(24, &plan))
    });
    group.finish();
}

fn bench_cuneiform_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuneiform_frontend");
    let src = SnvParams::fig4(32).cuneiform_source();
    group.bench_function("parse_and_unfold_snv32", |b| {
        b.iter(|| {
            let mut wf = CuneiformWorkflow::parse("snv", &src, 1).expect("parse");
            wf.initial_tasks().expect("unfold").len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_table2,
    bench_fig6,
    bench_fig8,
    bench_fig9,
    bench_kernel_netfair,
    bench_engine_hot_path,
    bench_cuneiform_frontend
);
criterion_main!(benches);
