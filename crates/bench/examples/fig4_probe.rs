//! Single-point Figure 4 probe with per-engine network volumes:
//! `cargo run --release -p hiway-bench --example fig4_probe -- <containers>`
use hiway_bench::experiments::fig4::{run_probe, Fig4Params};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let containers: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(576);
    let params = Fig4Params {
        nodes: 24,
        container_counts: vec![containers],
        samples: 72,
        runs: 1,
        cpu_scale: 1.0,
    };
    let t = std::time::Instant::now();
    let (hiway, hiway_gb, tez, tez_gb) = run_probe(&params, containers).expect("probe");
    println!(
        "containers={containers} hiway={:.1}min ({hiway_gb:.0}GB net) tez={:.1}min ({tez_gb:.0}GB net) wall {:?}",
        hiway / 60.0, tez / 60.0, t.elapsed()
    );
}
