//! Property tests: JSON round-trips and XML robustness.

use proptest::prelude::*;

use hiway_format::json::Json;
use hiway_format::xml::XmlElement;

/// Strategy for arbitrary JSON values with bounded depth/size.
fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        // Finite, round-trippable numbers.
        (-1.0e12f64..1.0e12).prop_map(|n| Json::Number((n * 1000.0).round() / 1000.0)),
        "[a-zA-Z0-9 _/.:\\\\\"\n\t\u{e9}\u{4e16}]{0,20}".prop_map(Json::String),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            proptest::collection::vec(("[a-z]{1,8}", inner), 0..6).prop_map(|pairs| {
                // Deduplicate keys: our Json::set replaces, and parsing a
                // document with duplicate keys keeps both, so generate
                // unique keys for a clean round-trip comparison.
                let mut seen = std::collections::HashSet::new();
                Json::Object(
                    pairs
                        .into_iter()
                        .filter(|(k, _)| seen.insert(k.clone()))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #[test]
    fn json_compact_round_trip(value in arb_json()) {
        let text = value.to_compact();
        let parsed = Json::parse(&text).expect("own output must parse");
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn json_pretty_round_trip(value in arb_json()) {
        let text = value.to_pretty(2);
        let parsed = Json::parse(&text).expect("own pretty output must parse");
        prop_assert_eq!(parsed, value);
    }

    /// The parser never panics on arbitrary input — it either parses or
    /// returns an error.
    #[test]
    fn json_parser_is_total(input in "\\PC{0,64}") {
        let _ = Json::parse(&input);
    }

    #[test]
    fn xml_parser_is_total(input in "\\PC{0,64}") {
        let _ = XmlElement::parse(&input);
    }

    /// Attribute values with entities survive a parse.
    #[test]
    fn xml_attribute_entities(value in "[a-zA-Z0-9<>&'\" ]{0,16}") {
        let escaped = value
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
            .replace('"', "&quot;")
            .replace('\'', "&apos;");
        let doc = format!(r#"<a v="{escaped}"/>"#);
        let el = XmlElement::parse(&doc).expect("escaped attribute must parse");
        prop_assert_eq!(el.attr("v"), Some(value.as_str()));
    }
}

/// Pathologically deep nesting is rejected, not a stack overflow.
#[test]
fn deep_nesting_is_rejected_gracefully() {
    let deep_json = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
    let err = Json::parse(&deep_json).unwrap_err();
    assert!(err.message.contains("nesting"), "{}", err.message);

    let deep_xml = format!("{}{}", "<a>".repeat(100_000), "</a>".repeat(100_000));
    let err = XmlElement::parse(&deep_xml).unwrap_err();
    assert!(err.message.contains("nesting"), "{}", err.message);

    // Deep-but-allowed nesting still parses.
    let ok_json = format!("{}1{}", "[".repeat(500), "]".repeat(500));
    assert!(Json::parse(&ok_json).is_ok());
}
