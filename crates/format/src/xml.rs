//! Minimal XML tree parser — enough for Pegasus DAX documents.
//!
//! Supports elements, attributes (single or double quoted), text content,
//! self-closing tags, comments, processing instructions / declarations, and
//! the five predefined entities. Namespaces are kept as literal prefixes
//! (DAX uses a default namespace only). DTDs and CDATA are out of scope —
//! DAX never uses them.

use std::fmt;

/// An XML element: name, attributes in document order, child elements, and
/// concatenated text content.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct XmlElement {
    pub name: String,
    pub attributes: Vec<(String, String)>,
    pub children: Vec<XmlElement>,
    pub text: String,
}

impl XmlElement {
    /// Parses a document and returns its root element.
    pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
        let mut p = XmlParser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_misc()?;
        let root = p.element()?;
        p.skip_misc()?;
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after root element"));
        }
        Ok(root)
    }

    /// Value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Attribute value or an error naming the element — DAX parsing uses
    /// this to produce actionable messages.
    pub fn require_attr(&self, name: &str) -> Result<&str, XmlError> {
        self.attr(name).ok_or_else(|| XmlError {
            offset: 0,
            message: format!("element <{}> missing attribute '{}'", self.name, name),
        })
    }

    /// Child elements with a given tag name (namespace prefixes ignored).
    pub fn children_named<'e, 'n: 'e>(
        &'e self,
        name: &'n str,
    ) -> impl Iterator<Item = &'e XmlElement> + 'e {
        self.children
            .iter()
            .filter(move |c| local_name(&c.name) == name)
    }

    /// First child with a given tag name.
    pub fn child_named(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find(|c| local_name(&c.name) == name)
    }
}

/// Strips a namespace prefix: `ns:job` → `job`.
pub fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

/// A parse error with byte offset context.
#[derive(Clone, Debug, PartialEq)]
pub struct XmlError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Maximum element nesting depth (stack-overflow guard).
const MAX_DEPTH: usize = 512;

struct XmlParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> XmlParser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, comments, and `<?...?>` declarations.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        while self.pos < self.bytes.len() {
            if self.starts_with(end) {
                self.pos += end.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated section (expected '{end}')")))
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while matches!(self.peek(),
            Some(c) if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<XmlElement, XmlError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} elements")));
        }
        let el = self.element_inner();
        self.depth -= 1;
        el
    }

    fn element_inner(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = XmlElement {
            name,
            ..XmlElement::default()
        };

        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(el); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.err("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.peek().is_none() {
                            return Err(self.err("unterminated attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    el.attributes.push((key, unescape(&raw)));
                }
                None => return Err(self.err("unexpected end of input in tag")),
            }
        }

        // Content: children interleaved with text until the closing tag.
        loop {
            let text_start = self.pos;
            while self.peek().is_some() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            if self.pos > text_start {
                let raw = String::from_utf8_lossy(&self.bytes[text_start..self.pos]);
                el.text.push_str(&unescape(&raw));
            }
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if local_name(&close) != local_name(&el.name) {
                    return Err(self.err(format!(
                        "mismatched closing tag: <{}> closed by </{}>",
                        el.name, close
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                el.text = el.text.trim().to_string();
                return Ok(el);
            }
            if self.peek() == Some(b'<') {
                el.children.push(self.element()?);
                continue;
            }
            return Err(self.err(format!("unterminated element <{}>", el.name)));
        }
    }
}

fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let end = rest.find(';');
        match end {
            Some(end) => {
                let entity = &rest[1..end];
                match entity {
                    "lt" => out.push('<'),
                    "gt" => out.push('>'),
                    "amp" => out.push('&'),
                    "quot" => out.push('"'),
                    "apos" => out.push('\''),
                    e if e.starts_with("#x") || e.starts_with("#X") => {
                        if let Some(c) = u32::from_str_radix(&e[2..], 16)
                            .ok()
                            .and_then(char::from_u32)
                        {
                            out.push(c);
                        }
                    }
                    e if e.starts_with('#') => {
                        if let Some(c) = e[1..].parse::<u32>().ok().and_then(char::from_u32) {
                            out.push(c);
                        }
                    }
                    _ => out.push_str(&rest[..=end]), // unknown: keep literally
                }
                rest = &rest[end + 1..];
            }
            None => {
                out.push_str(rest);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_element() {
        let el = XmlElement::parse(r#"<adag name="montage" count="1"/>"#).unwrap();
        assert_eq!(el.name, "adag");
        assert_eq!(el.attr("name"), Some("montage"));
        assert_eq!(el.attr("count"), Some("1"));
        assert_eq!(el.attr("missing"), None);
    }

    #[test]
    fn parse_nested_with_text() {
        let doc = r#"
            <?xml version="1.0" encoding="UTF-8"?>
            <!-- a DAX-like document -->
            <adag name="test">
              <job id="ID1" name="mProject">
                <argument>-x input.fits</argument>
                <uses file="input.fits" link="input"/>
                <uses file="out.fits" link="output"/>
              </job>
              <child ref="ID2"><parent ref="ID1"/></child>
            </adag>"#;
        let el = XmlElement::parse(doc).unwrap();
        assert_eq!(el.name, "adag");
        assert_eq!(el.children.len(), 2);
        let job = el.child_named("job").unwrap();
        assert_eq!(job.attr("id"), Some("ID1"));
        assert_eq!(job.children_named("uses").count(), 2);
        assert_eq!(job.child_named("argument").unwrap().text, "-x input.fits");
        let child = el.child_named("child").unwrap();
        assert_eq!(
            child.child_named("parent").unwrap().attr("ref"),
            Some("ID1")
        );
    }

    #[test]
    fn entities_unescaped() {
        let el =
            XmlElement::parse(r#"<a v="&lt;x&gt; &amp; &quot;y&quot;">&#65;&#x42;</a>"#).unwrap();
        assert_eq!(el.attr("v"), Some(r#"<x> & "y""#));
        assert_eq!(el.text, "AB");
    }

    #[test]
    fn namespace_prefixes_are_transparent() {
        let el = XmlElement::parse(r#"<p:adag xmlns:p="urn:x"><p:job id="1"/></p:adag>"#).unwrap();
        assert_eq!(local_name(&el.name), "adag");
        assert!(el.child_named("job").is_some());
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(XmlElement::parse("<a><b></a></b>").is_err());
        assert!(XmlElement::parse("<a>").is_err());
        assert!(XmlElement::parse("<a></a><b/>").is_err());
        assert!(XmlElement::parse("").is_err());
    }

    #[test]
    fn single_quoted_attributes() {
        let el = XmlElement::parse("<a v='1'/>").unwrap();
        assert_eq!(el.attr("v"), Some("1"));
    }

    #[test]
    fn require_attr_reports_element() {
        let el = XmlElement::parse("<job/>").unwrap();
        let err = el.require_attr("id").unwrap_err();
        assert!(err.message.contains("<job>"));
        assert!(err.message.contains("'id'"));
    }

    #[test]
    fn comments_inside_content_skipped() {
        let el = XmlElement::parse("<a><!-- note -->text<b/><!-- end --></a>").unwrap();
        assert_eq!(el.text, "text");
        assert_eq!(el.children.len(), 1);
    }
}
