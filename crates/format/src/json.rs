//! JSON value model, recursive-descent parser, and writer.
//!
//! Objects preserve insertion order (a `Vec` of pairs rather than a map) so
//! that provenance traces serialize deterministically and byte-compare
//! across runs — the paper's re-executable traces depend on stable output.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

/// A parse error with byte offset context.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Builds an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds or replaces a field on an object; panics on non-objects
    /// (that is a programming error in trace construction, not input).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Object(pairs) => {
                let value = value.into();
                if let Some(pair) = pairs.iter_mut().find(|(k, _)| k == key) {
                    pair.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
                self
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Builder-style `set`.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `get` through a path of keys.
    pub fn get_path(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes compactly (no extra whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with `indent`-space indentation.
    pub fn to_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Number(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Number(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Number(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Number(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Number(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Maximum nesting depth: protects the recursive-descent parser's stack
/// against adversarial inputs like `[[[[…`.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected literal '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Handle surrogate pairs for completeness.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Number(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parse_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get_path(&["c"]).unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn compact_round_trip() {
        let src = r#"{"workflow":"snv","tasks":[{"id":1,"ok":true},{"id":2,"ok":false}],"t":1.25}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.to_compact(), src);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn pretty_round_trip() {
        let v = Json::object()
            .with("name", "montage")
            .with("degree", 0.25)
            .with("tasks", vec![1u64, 2, 3]);
        let pretty = v.to_pretty(2);
        assert!(pretty.contains("\n  \"name\": \"montage\""));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut v = Json::object().with("a", 1u64);
        v.set("a", 2u64);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::object()
            .with("z", 1u64)
            .with("a", 2u64)
            .with("m", 3u64);
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn numbers_serialize_integers_cleanly() {
        assert_eq!(Json::Number(5.0).to_compact(), "5");
        assert_eq!(Json::Number(5.5).to_compact(), "5.5");
        assert_eq!(Json::Number(-0.25).to_compact(), "-0.25");
    }

    #[test]
    fn control_chars_escaped_on_output() {
        let v = Json::String("a\u{1}b".into());
        assert_eq!(v.to_compact(), "\"a\\u0001b\"");
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }
}
