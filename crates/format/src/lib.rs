//! # hiway-format — self-contained JSON and XML support
//!
//! Hi-WAY's front-ends and provenance layer move three textual formats
//! around: Galaxy workflows and provenance traces are JSON, and Pegasus DAX
//! workflows are XML. The allowed dependency set for this reproduction does
//! not include `serde_json` or an XML crate, so this crate implements the
//! small subset needed — a full JSON value model with parser and writer,
//! and a namespace-oblivious XML tree parser sufficient for DAX documents.

pub mod json;
pub mod xml;

pub use json::{Json, JsonError};
pub use xml::{XmlElement, XmlError};
