//! Fault tolerance (paper §3.1): "Hi-WAY is able to re-try failed tasks,
//! requesting YARN to allocate the additional containers on different
//! compute nodes. Also, data … persists through the crash of a storage
//! node, since Hi-WAY exploits the redundant file storage of HDFS."
//!
//! This example starts a workflow, pauses virtual time mid-run, kills a
//! worker node that is actively executing tasks, re-replicates the lost
//! blocks, and lets the run finish on the survivors.
//!
//! ```sh
//! cargo run --example fault_tolerance
//! ```

use hiway::core::cluster::Cluster;
use hiway::core::driver::Runtime;
use hiway::core::{HiwayConfig, SchedulerPolicy};
use hiway::lang::ir::{OutputSpec, StaticWorkflow, TaskCost, TaskId, TaskSpec};
use hiway::provdb::ProvDb;
use hiway::sim::{ClusterSpec, NodeId, NodeSpec, SimTime};

fn main() {
    let spec = ClusterSpec::homogeneous(4, "worker", &NodeSpec::m3_large("proto"));
    let mut cluster = Cluster::new(spec, 21);
    cluster.prestage("/in/genome.dat", 256 << 20);

    let tasks: Vec<TaskSpec> = (0..8)
        .map(|i| TaskSpec {
            id: TaskId(i),
            name: "crunch".into(),
            command: format!("crunch --part {i}"),
            inputs: vec!["/in/genome.dat".into()],
            outputs: vec![OutputSpec {
                path: format!("/out/part{i}"),
                size: 16 << 20,
            }],
            cost: TaskCost::new(300.0, 1, 512),
        })
        .collect();

    let mut runtime = Runtime::new(cluster);
    let wf = runtime.submit(
        Box::new(StaticWorkflow::new("resilient", "test", tasks)),
        HiwayConfig::default().with_scheduler(SchedulerPolicy::Fcfs),
        ProvDb::new(),
    );

    // Let tasks get mid-flight, then pull the plug on worker-2.
    runtime.run_until(SimTime::from_secs(90.0));
    println!("t=90s: killing worker-2 while its tasks are running…");
    runtime.fail_node(NodeId(2));
    let copies = runtime.cluster.re_replicate();
    println!("  HDFS re-replication scheduled {copies} block copies");

    let reports = runtime.run_to_completion();
    match runtime.error_of(wf) {
        None => {
            let report = &reports[wf];
            println!(
                "workflow completed despite the failure: {} tasks in {:.1}s",
                report.tasks.len(),
                report.runtime_secs()
            );
            let retried = report.tasks.iter().filter(|t| t.attempts > 1).count();
            println!("  tasks retried on surviving nodes: {retried}");
            for t in report.tasks.iter().filter(|t| t.attempts > 1) {
                println!(
                    "    task {} re-ran on {} (attempt {})",
                    t.id.0, t.node, t.attempts
                );
            }
            assert!(report.tasks.iter().all(|t| t.node != "worker-2"));
        }
        Some(err) => {
            eprintln!("workflow failed: {err}");
            std::process::exit(1);
        }
    }
}
