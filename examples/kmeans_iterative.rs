//! Iterative workflows (paper §3.3): the k-means clustering workflow with
//! data-dependent convergence — tasks are discovered while the workflow
//! runs, which static-DAG systems cannot express.
//!
//! ```sh
//! cargo run --example kmeans_iterative
//! ```

use hiway::provdb::ProvDb;
use hiway::recipes::cook_str;

fn main() {
    let cooked = cook_str(
        "cluster local nodes=4 seed=13\n\
         scheduler data-aware\n\
         container vcores=2 memory=2048\n\
         workflow kmeans partitions=6\n",
    )
    .expect("recipe cooks");
    println!("k-means source is an iterative Cuneiform workflow; the number");
    println!("of rounds is decided by the (simulated) convergence test.\n");
    let mut runtime = cooked.runtime;
    let wf = runtime.submit(cooked.source, cooked.config, ProvDb::new());
    let reports = runtime.run_to_completion();
    if let Some(err) = runtime.error_of(wf) {
        eprintln!("workflow failed: {err}");
        std::process::exit(1);
    }
    let report = &reports[wf];
    let rounds = report.tasks.iter().filter(|t| t.name == "update").count();
    println!(
        "converged after {rounds} rounds, {} tasks, {:.1}s virtual time",
        report.tasks.len(),
        report.runtime_secs()
    );
    // Each round's centroid file exists in HDFS.
    for round in 1..=rounds {
        let path = format!("/kmeans/cents_{round}.dat");
        assert!(runtime.cluster.hdfs.exists(&path));
        println!("  {path}");
    }
}
