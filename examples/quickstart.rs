//! Quickstart: write a tiny Cuneiform workflow, stand up a simulated
//! 3-node cluster, run the workflow on Hi-WAY, and inspect the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hiway::core::cluster::Cluster;
use hiway::core::driver::Runtime;
use hiway::core::HiwayConfig;
use hiway::lang::cuneiform::CuneiformWorkflow;
use hiway::provdb::ProvDb;
use hiway::sim::{ClusterSpec, NodeSpec};

fn main() {
    // A two-stage pipeline over three input chunks: `grep` fans out over
    // the chunks (element-wise list application), `merge` aggregates.
    let source = r#"
        deftask grep( out("/work/hits_{0}.txt", mul(insize(chunk), 0.1)) : chunk pattern )
            cpu mul(insize(chunk), 0.0000001) threads 1 mem 512;
        deftask merge( out("/out/all_hits.txt", insize(hits)) : [hits] )
            cpu 2 threads 1 mem 512;
        let chunks = [file("/in/part0", 200000000),
                      file("/in/part1", 250000000),
                      file("/in/part2", 150000000)];
        target merge(grep(chunks, "ATTCGA"));
    "#;
    let workflow = CuneiformWorkflow::parse("quickstart", source, 42).expect("valid workflow");

    // A 3-node cluster of EC2-m3.large-like machines, with the input
    // chunks pre-staged into the simulated HDFS (what the paper's Chef
    // recipes would do before an experiment).
    let spec = ClusterSpec::homogeneous(3, "worker", &NodeSpec::m3_large("proto"));
    let mut cluster = Cluster::new(spec, 1);
    cluster.prestage("/in/part0", 200_000_000);
    cluster.prestage("/in/part1", 250_000_000);
    cluster.prestage("/in/part2", 150_000_000);

    // One Hi-WAY AM per workflow; the default scheduler is data-aware.
    let mut runtime = Runtime::new(cluster);
    let wf = runtime.submit(Box::new(workflow), HiwayConfig::default(), ProvDb::new());
    let reports = runtime.run_to_completion();

    if let Some(err) = runtime.error_of(wf) {
        eprintln!("workflow failed: {err}");
        std::process::exit(1);
    }
    let report = &reports[wf];
    println!(
        "workflow '{}' ({} tasks) finished in {:.1}s of virtual time",
        report.name,
        report.tasks.len(),
        report.runtime_secs()
    );
    for task in &report.tasks {
        println!(
            "  task {:>2} {:<8} on {:<9} ready {:>6.1}s start {:>6.1}s end {:>6.1}s",
            task.id.0, task.name, task.node, task.t_ready, task.t_start, task.t_end
        );
    }
    println!(
        "result present in HDFS: {}",
        runtime.cluster.hdfs.exists("/out/all_hits.txt")
    );
    println!("\nprovenance trace (first 3 lines):");
    for line in report.trace.lines().take(3) {
        println!("  {line}");
    }
}
