//! Reproducibility (paper §3.5): run a workflow, take its provenance
//! trace, and re-execute the trace *as a workflow* — the fourth language.
//!
//! ```sh
//! cargo run --example trace_replay
//! ```

use hiway::core::cluster::Cluster;
use hiway::core::driver::Runtime;
use hiway::core::HiwayConfig;
use hiway::lang::cuneiform::CuneiformWorkflow;
use hiway::lang::trace::parse_trace;
use hiway::provdb::ProvDb;
use hiway::sim::{ClusterSpec, NodeSpec};

const SOURCE: &str = r#"
    deftask split( out("/w/a.dat", 80000000), out("/w/b.dat", 80000000) : input )
        cpu 4 threads 1 mem 512;
    deftask analyze( out("/w/stats_{0}.txt", 1000) : part )
        cpu 20 threads 2 mem 1024;
    deftask join( out("/out/report.txt", 2000) : [stats] )
        cpu 2 threads 1 mem 512;
    let input = file("/in/data.bin", 160000000);
    let parts = split(input);
    target join(analyze(parts));
"#;

fn fresh_runtime() -> Runtime {
    let spec = ClusterSpec::homogeneous(3, "node", &NodeSpec::m3_large("proto"));
    let mut cluster = Cluster::new(spec, 5);
    cluster.prestage("/in/data.bin", 160_000_000);
    Runtime::new(cluster)
}

fn main() {
    // First execution, from Cuneiform source.
    let workflow = CuneiformWorkflow::parse("analysis", SOURCE, 1).expect("valid");
    let mut rt = fresh_runtime();
    let wf = rt.submit(Box::new(workflow), HiwayConfig::default(), ProvDb::new());
    let reports = rt.run_to_completion();
    assert!(rt.error_of(wf).is_none(), "{:?}", rt.error_of(wf));
    let trace = reports[wf].trace.clone();
    println!(
        "original run: {} tasks in {:.1}s; trace has {} events",
        reports[wf].tasks.len(),
        reports[wf].runtime_secs(),
        trace.lines().count()
    );

    // Second execution, from the trace. "Hi-WAY promotes reproducibility
    // of experiments by being able to parse and execute such workflow
    // traces directly" — inputs must be present, as on the original
    // cluster.
    let replay = parse_trace(&trace).expect("traces are workflows");
    let mut rt2 = fresh_runtime();
    let wf2 = rt2.submit(Box::new(replay), HiwayConfig::default(), ProvDb::new());
    let reports2 = rt2.run_to_completion();
    assert!(rt2.error_of(wf2).is_none(), "{:?}", rt2.error_of(wf2));
    println!(
        "replayed run: {} tasks in {:.1}s (language: {})",
        reports2[wf2].tasks.len(),
        reports2[wf2].runtime_secs(),
        reports2[wf2].language
    );
    assert_eq!(reports[wf].tasks.len(), reports2[wf2].tasks.len());
    println!("replay executed the identical task set ✓");
}
