//! Multi-language support (paper §3.2): run a workflow exported from the
//! Galaxy GUI — the TRAPLINE RNA-seq pipeline of §4.2 — by binding its
//! input ports to staged files at submission time.
//!
//! ```sh
//! cargo run --release --example galaxy_rnaseq
//! ```

use hiway::core::driver::Runtime;
use hiway::core::SchedulerPolicy;
use hiway::lang::galaxy::parse_galaxy;
use hiway::provdb::ProvDb;
use hiway::sim::NodeSpec;
use hiway::workloads::profiles;
use hiway::workloads::rnaseq::RnaseqParams;

fn main() {
    let params = RnaseqParams::default();
    let ga_json = params.galaxy_json();
    println!(
        "parsed an exported Galaxy workflow ({} bytes of .ga JSON)",
        ga_json.len()
    );

    // "Input ports serve as placeholders for the input files, which are
    // resolved interactively when the workflow is committed" (§3.2).
    let workflow = parse_galaxy(&ga_json, &params.input_bindings(), &params.tool_profiles())
        .expect("valid .ga export");

    let mut deployment = profiles::ec2_cluster(6, &NodeSpec::c3_2xlarge("proto"), 3);
    for (path, size) in params.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let mut config = profiles::whole_node_config(&NodeSpec::c3_2xlarge("proto"));
    config.scheduler = SchedulerPolicy::DataAware;

    let mut runtime: Runtime = deployment.runtime;
    let wf = runtime.submit(Box::new(workflow), config, ProvDb::new());
    let reports = runtime.run_to_completion();
    if let Some(err) = runtime.error_of(wf) {
        eprintln!("workflow failed: {err}");
        std::process::exit(1);
    }
    let report = &reports[wf];
    println!(
        "TRAPLINE on 6 nodes: {:.1} virtual minutes, {} tasks",
        report.runtime_mins(),
        report.tasks.len()
    );
    for (tool, count) in report.task_histogram() {
        println!("  {tool:<10} x{count}");
    }
    println!(
        "\nthe provenance trace is itself a workflow ({} lines) — see the\n\
         trace_replay example for re-executing one",
        report.trace.lines().count()
    );
}
