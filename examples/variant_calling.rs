//! The paper's flagship workload: SNV calling over genomic samples,
//! executed from a recipe (paper §3.6) on an EC2-like simulated cluster
//! with reads streamed from S3 during execution — a small version of the
//! Table 2 weak-scaling setup.
//!
//! ```sh
//! cargo run --release --example variant_calling
//! ```

use hiway::provdb::ProvDb;
use hiway::recipes::cook_str;

fn main() {
    let recipe = "\
        # SNV calling: 4 workers, one 8 GiB sample per worker,\n\
        # reads streamed from S3, whole-node containers (Table 2 setup)\n\
        cluster ec2 workers=4 node=m3.large seed=11\n\
        scheduler fcfs\n\
        container whole-node\n\
        workflow snv profile=table2 samples=4\n";
    println!("cooking recipe:\n{recipe}");
    let cooked = cook_str(recipe).expect("recipe cooks");
    let mut runtime = cooked.runtime;
    let wf = runtime.submit(cooked.source, cooked.config, ProvDb::new());
    let reports = runtime.run_to_completion();
    if let Some(err) = runtime.error_of(wf) {
        eprintln!("workflow failed: {err}");
        std::process::exit(1);
    }
    let report = &reports[wf];
    println!(
        "SNV calling over {} tasks finished in {:.1} virtual minutes",
        report.tasks.len(),
        report.runtime_mins()
    );
    println!("tasks by tool:");
    for (tool, count) in report.task_histogram() {
        println!("  {tool:<15} x{count}");
    }
    // The per-sample annotated variant files are the workflow's products.
    let outputs: Vec<String> = runtime
        .cluster
        .hdfs
        .list()
        .into_iter()
        .filter(|p| p.starts_with("/out/"))
        .collect();
    println!("annotated variant files in HDFS: {}", outputs.len());
    for path in outputs {
        println!(
            "  {path} ({} bytes)",
            runtime.cluster.hdfs.len(&path).unwrap()
        );
    }
}
