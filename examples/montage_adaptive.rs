//! Adaptive scheduling on a heterogeneous cluster (paper §4.3, Figure 9,
//! in miniature): the Montage DAX workflow on stressed workers, run once
//! with FCFS and then repeatedly with HEFT sharing a provenance database.
//! Watch the HEFT runtimes fall as the runtime estimates fill in.
//!
//! ```sh
//! cargo run --release --example montage_adaptive
//! ```

use hiway::core::{HiwayConfig, SchedulerPolicy};
use hiway::lang::dax::parse_dax;
use hiway::provdb::ProvDb;
use hiway::sim::NodeSpec;
use hiway::workloads::montage::MontageParams;
use hiway::workloads::profiles;
use hiway::yarn::Resource;

fn run_once(policy: SchedulerPolicy, db: ProvDb, seed: u64) -> f64 {
    let montage = MontageParams::default();
    let mut deployment = profiles::ec2_cluster(11, &NodeSpec::m3_large("proto"), seed);
    // Heterogeneity via synthetic load (the paper uses Linux `stress`):
    // worker 0 clean, 1–5 CPU-stressed, 6–10 disk-stressed.
    let workers = deployment.worker_ids();
    for (i, &level) in [1u32, 2, 4, 8, 16].iter().enumerate() {
        deployment
            .runtime
            .cluster
            .add_cpu_stress(workers[1 + i], level);
        deployment
            .runtime
            .cluster
            .add_disk_stress(workers[6 + i], level);
    }
    for (path, size) in montage.input_files() {
        deployment.runtime.cluster.prestage(&path, size);
    }
    let source = parse_dax(&montage.dax_source()).expect("valid DAX");
    let config = HiwayConfig {
        container_resource: Resource::new(1, 2048),
        scheduler: policy,
        seed,
        write_trace: false,
        ..HiwayConfig::default()
    };
    let mut runtime = deployment.runtime;
    runtime.master_overhead = None; // focus the measurement on the workers
    let wf = runtime.submit(Box::new(source), config, db);
    let reports = runtime.run_to_completion();
    assert!(runtime.error_of(wf).is_none(), "{:?}", runtime.error_of(wf));
    reports[wf].runtime_secs()
}

fn main() {
    let fcfs = run_once(SchedulerPolicy::Fcfs, ProvDb::new(), 1);
    println!("greedy (FCFS) baseline:          {fcfs:7.1} s");

    let shared = ProvDb::new();
    println!("consecutive HEFT runs (shared provenance):");
    for k in 0..12 {
        let secs = run_once(SchedulerPolicy::Heft, shared.clone(), 100 + k);
        let marker = if (secs) < fcfs { "↓ beats FCFS" } else { "" };
        println!("  {k:>2} prior runs: {secs:7.1} s  {marker}");
    }
}
