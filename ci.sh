#!/usr/bin/env bash
# CI entry point: build, test, lint, and smoke-run the engine benchmark.
# Everything here is deterministic; the bench smoke also regenerates
# BENCH_engine.json so regressions in the engine hot path show up as a
# speedup drop in the artifact.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --workspace

echo "==> tests"
cargo test -q --workspace

echo "==> clippy (first-party crates; compat/ shims are vendored as-is)"
cargo clippy --all-targets -p hiway -p hiway-sim -p hiway-hdfs -p hiway-yarn \
  -p hiway-format -p hiway-lang -p hiway-provdb -p hiway-core \
  -p hiway-workloads -p hiway-recipes -p hiway-bench -- -D warnings

echo "==> engine benchmark smoke"
./target/release/bench_engine --quick BENCH_engine.json
cat BENCH_engine.json

echo "CI OK"
