#!/usr/bin/env bash
# CI entry point: build, test, lint, and smoke-run the engine benchmark.
# Everything here is deterministic; the bench smoke also regenerates
# BENCH_engine.json so regressions in the engine hot path show up as a
# speedup drop in the artifact.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --workspace

echo "==> rustfmt (first-party crates; compat/ shims are vendored as-is)"
cargo fmt --check -p hiway -p hiway-obs -p hiway-sim -p hiway-hdfs -p hiway-yarn \
  -p hiway-format -p hiway-lang -p hiway-provdb -p hiway-core \
  -p hiway-workloads -p hiway-recipes -p hiway-bench

echo "==> tests"
cargo test -q --workspace

echo "==> clippy (first-party crates; compat/ shims are vendored as-is)"
cargo clippy --all-targets -p hiway -p hiway-obs -p hiway-sim -p hiway-hdfs -p hiway-yarn \
  -p hiway-format -p hiway-lang -p hiway-provdb -p hiway-core \
  -p hiway-workloads -p hiway-recipes -p hiway-bench -- -D warnings

echo "==> engine benchmark smoke"
./target/release/bench_engine --quick BENCH_engine.json
cat BENCH_engine.json

echo "==> observability overhead smoke"
./target/release/bench_obs --quick BENCH_obs.json
cat BENCH_obs.json

echo "==> provenance store benchmark smoke"
./target/release/bench_provdb --quick BENCH_provdb.json
cat BENCH_provdb.json

echo "==> trace determinism gate (same seed, twice, byte-identical)"
./target/release/hiway-trace --out-dir /tmp/hiway_trace1 > /dev/null
./target/release/hiway-trace --out-dir /tmp/hiway_trace2 > /dev/null
for f in trace.perfetto.json trace.events.jsonl trace.gantt.txt; do
  if ! cmp -s "/tmp/hiway_trace1/$f" "/tmp/hiway_trace2/$f"; then
    echo "FAIL: $f differs between two identically-seeded runs" >&2
    exit 1
  fi
done
echo "trace artifacts byte-identical across runs"

echo "==> chaos determinism gate (same seed, twice, byte-identical)"
./target/release/chaos > /tmp/chaos_run1.txt
./target/release/chaos > /tmp/chaos_run2.txt
if ! cmp -s /tmp/chaos_run1.txt /tmp/chaos_run2.txt; then
  echo "FAIL: chaos experiment is not deterministic across runs" >&2
  diff /tmp/chaos_run1.txt /tmp/chaos_run2.txt >&2 || true
  exit 1
fi
if ! cmp -s /tmp/chaos_run1.txt results/chaos.txt; then
  echo "FAIL: chaos output drifted from results/chaos.txt" >&2
  diff results/chaos.txt /tmp/chaos_run1.txt >&2 || true
  exit 1
fi
echo "chaos deterministic, matches results/chaos.txt"

echo "==> multi-tenancy fairness gate (same seed, twice, byte-identical)"
./target/release/multiwf > /tmp/multiwf_run1.txt
./target/release/multiwf > /tmp/multiwf_run2.txt
if ! cmp -s /tmp/multiwf_run1.txt /tmp/multiwf_run2.txt; then
  echo "FAIL: multiwf experiment is not deterministic across runs" >&2
  diff /tmp/multiwf_run1.txt /tmp/multiwf_run2.txt >&2 || true
  exit 1
fi
if ! cmp -s /tmp/multiwf_run1.txt results/multiwf.txt; then
  echo "FAIL: multiwf output drifted from results/multiwf.txt" >&2
  diff results/multiwf.txt /tmp/multiwf_run1.txt >&2 || true
  exit 1
fi
echo "multiwf deterministic, matches results/multiwf.txt"

echo "==> crash-and-resume determinism gate (same seed, twice, byte-identical)"
./target/release/resume > /tmp/resume_run1.txt
./target/release/resume > /tmp/resume_run2.txt
if ! cmp -s /tmp/resume_run1.txt /tmp/resume_run2.txt; then
  echo "FAIL: resume experiment is not deterministic across runs" >&2
  diff /tmp/resume_run1.txt /tmp/resume_run2.txt >&2 || true
  exit 1
fi
if ! cmp -s /tmp/resume_run1.txt results/resume.txt; then
  echo "FAIL: resume output drifted from results/resume.txt" >&2
  diff results/resume.txt /tmp/resume_run1.txt >&2 || true
  exit 1
fi
echo "resume deterministic, matches results/resume.txt"

echo "CI OK"
