//! The [`Strategy`] trait and the core combinators: [`Just`], [`Map`],
//! [`Union`], [`BoxedStrategy`], numeric-range and tuple strategies, and
//! `any::<T>()`.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type `Value`. Unlike the real crate there is no
/// value tree / shrinking — a strategy just produces values.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map }
    }

    /// Type-erase into a clonable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.new_value(rng)),
        }
    }

    /// Build a recursive strategy: `self` generates leaves and `branch`
    /// builds one recursion level on top of an inner strategy. `depth`
    /// bounds the recursion; the size hints are accepted for API
    /// compatibility but unused (each level flips a coin between leaf and
    /// branch, so expected sizes stay modest for the depths in use).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = branch(strat).boxed();
            let leaf = leaf.clone();
            strat = BoxedStrategy {
                sample: Rc::new(move |rng: &mut TestRng| {
                    if rng.weighted_bool(0.5) {
                        leaf.new_value(rng)
                    } else {
                        deeper.new_value(rng)
                    }
                }),
            };
        }
        strat
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.new_value(rng))
    }
}

/// Reference-counted type-erased strategy; `Clone` is what makes
/// `prop_recursive` closures and `prop_oneof!` arms composable.
pub struct BoxedStrategy<T> {
    pub(crate) sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Uniform choice among strategies with a common value type
/// (the engine behind `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let arm = rng.below_usize(self.arms.len());
        self.arms[arm].new_value(rng)
    }
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.weighted_bool(0.5)
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.below(u64::MAX) as $ty
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.below(u64::MAX) as $ty;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $ty;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{Config, TestRunner};

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (1u32..5, (0.0f64..1.0).prop_map(|x| x * 10.0), Just("k"));
        let mut runner = TestRunner::new(Config::with_cases(200));
        runner
            .run(&strat, |(a, b, k)| {
                crate::prop_assert!((1..5).contains(&a));
                crate::prop_assert!((0.0..10.0).contains(&b));
                crate::prop_assert_eq!(k, "k");
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn union_hits_every_arm() {
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut runner = TestRunner::new(Config::with_cases(300));
        let seen = std::cell::RefCell::new([false; 4]);
        runner
            .run(&strat, |v| {
                seen.borrow_mut()[v as usize] = true;
                Ok(())
            })
            .unwrap();
        assert_eq!(&seen.borrow()[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategy_is_depth_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut runner = TestRunner::new(Config::with_cases(200));
        runner
            .run(&strat, |t| {
                crate::prop_assert!(depth(&t) <= 3, "depth {} exceeds bound", depth(&t));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn failing_property_reports_case_and_input() {
        let mut runner = TestRunner::new(Config::with_cases(50));
        let err = runner
            .run(&(0u32..100,), |(v,)| {
                crate::prop_assert!(v < 101, "impossible");
                crate::prop_assert!(v % 2 == 0, "odd value {v}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.contains("odd value"), "{}", err.message);
        assert!(err.message.contains("input:"), "{}", err.message);
    }
}
