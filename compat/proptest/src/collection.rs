//! Collection strategies: `collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bound for [`vec`]; built from a `usize`, `Range<usize>`, or
/// `RangeInclusive<usize>` like the real crate's `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// `Vec` strategy: length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below_usize(self.size.max - self.size.min + 1);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{Config, TestRunner};

    #[test]
    fn vec_respects_length_and_element_bounds() {
        let mut runner = TestRunner::new(Config::with_cases(200));
        runner
            .run(&vec(5u32..8, 2..6), |v| {
                crate::prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
                for x in &v {
                    crate::prop_assert!((5..8).contains(x));
                }
                Ok(())
            })
            .unwrap();
    }
}
