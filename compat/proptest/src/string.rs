//! Regex-literal string strategies: `&'static str` implements
//! [`Strategy`], generating strings that match the pattern.
//!
//! Supported syntax — the subset the workspace's tests use:
//!
//! * one character class: `[...]` (literal chars, `a-z` ranges, `\`-escapes,
//!   `\PC`, leading `^` negation, and `&&[^...]` subtraction) or a bare
//!   `\PC` ("any non-control character");
//! * one trailing repetition `{n}` or `{m,n}` (default: exactly one char).
//!
//! `\PC` draws from a fixed pool of printable characters spanning ASCII and
//! multi-byte scripts — not all of Unicode, but enough to exercise UTF-8
//! handling, escaping, and round-trip paths.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The `\PC` sampling pool: printable ASCII plus multi-byte letters,
/// symbols, and an astral-plane character. No control/format characters.
const NON_CONTROL_POOL: &str = concat!(
    " !\"#$%&'()*+,-./0123456789:;<=>?@",
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`",
    "abcdefghijklmnopqrstuvwxyz{|}~",
    "¡µ°±²Ωλπéüß–—‘’“”•…€→≤≥√∞",
    "世界文字한글абвгд日本語",
    "🚀🙂"
);

#[derive(Clone, Debug, Default)]
struct CharClass {
    /// Include the `\PC` pool.
    non_control: bool,
    /// Inclusive character ranges (single chars are width-1 ranges).
    ranges: Vec<(char, char)>,
    /// Characters excluded via `[^...]` after `&&`, or class-level `^`.
    excluded: Vec<(char, char)>,
}

impl CharClass {
    fn contains_excluded(&self, c: char) -> bool {
        self.excluded.iter().any(|&(lo, hi)| lo <= c && c <= hi)
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        let pool: Vec<char> = NON_CONTROL_POOL.chars().collect();
        let range_total: u64 = self
            .ranges
            .iter()
            .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
            .sum();
        for _ in 0..1000 {
            let use_pool = self.non_control
                && (range_total == 0 || rng.weighted_bool(0.5));
            let c = if use_pool {
                pool[rng.below_usize(pool.len())]
            } else if range_total > 0 {
                let mut pick = rng.below(range_total);
                let mut chosen = None;
                for &(lo, hi) in &self.ranges {
                    let width = hi as u64 - lo as u64 + 1;
                    if pick < width {
                        chosen = char::from_u32(lo as u32 + pick as u32);
                        break;
                    }
                    pick -= width;
                }
                match chosen {
                    Some(c) => c,
                    None => continue, // surrogate gap inside a range
                }
            } else {
                panic!("character class with nothing to include");
            };
            if !self.contains_excluded(c) {
                return c;
            }
        }
        panic!("character class excludes everything it includes");
    }
}

#[derive(Clone, Debug)]
struct Pattern {
    class: CharClass,
    min_len: usize,
    max_len: usize,
}

struct Parser<'a> {
    chars: Vec<char>,
    pattern: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser {
            chars: pattern.chars().collect(),
            pattern,
            pos: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        c
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "unsupported regex strategy {:?} at position {}: {what}",
            self.pattern, self.pos
        );
    }

    fn parse(mut self) -> Pattern {
        let class = self.parse_class();
        let (min_len, max_len) = if self.peek() == Some('{') {
            self.parse_repetition()
        } else {
            (1, 1)
        };
        if self.pos != self.chars.len() {
            self.fail("trailing syntax (only CLASS{m,n} is supported)");
        }
        Pattern {
            class,
            min_len,
            max_len,
        }
    }

    /// `\PC` or a bracketed class.
    fn parse_class(&mut self) -> CharClass {
        match self.peek() {
            Some('\\') => {
                self.bump();
                self.parse_escape_as_class()
            }
            Some('[') => self.parse_bracketed(),
            _ => self.fail("expected '[' or '\\PC'"),
        }
    }

    /// After a `\`: either `PC` (non-control) or a literal escape.
    fn parse_escape_as_class(&mut self) -> CharClass {
        if self.peek() == Some('P') {
            self.bump();
            if self.bump() != 'C' {
                self.fail("only the \\PC property is supported");
            }
            CharClass {
                non_control: true,
                ..CharClass::default()
            }
        } else {
            let c = self.bump();
            CharClass {
                ranges: vec![(c, c)],
                ..CharClass::default()
            }
        }
    }

    fn parse_bracketed(&mut self) -> CharClass {
        if self.bump() != '[' {
            self.fail("expected '['");
        }
        let mut class = CharClass::default();
        let negated = self.peek() == Some('^');
        if negated {
            self.bump();
        }
        loop {
            match self.peek() {
                None => self.fail("unterminated character class"),
                Some(']') => {
                    self.bump();
                    break;
                }
                Some('&') if self.chars.get(self.pos + 1) == Some(&'&') => {
                    // `&&[^...]` subtraction.
                    self.bump();
                    self.bump();
                    let sub = self.parse_bracketed_negation();
                    class.excluded.extend(sub);
                    if self.bump() != ']' {
                        self.fail("expected ']' after '&&[^...]'");
                    }
                    break;
                }
                Some('\\') => {
                    self.bump();
                    if self.peek() == Some('P') {
                        self.bump();
                        if self.bump() != 'C' {
                            self.fail("only the \\PC property is supported");
                        }
                        class.non_control = true;
                    } else {
                        let c = self.bump();
                        class.ranges.push((c, c));
                    }
                }
                Some(c) => {
                    self.bump();
                    // `a-z` range, unless the '-' is last (then literal).
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.bump();
                        let hi = if self.peek() == Some('\\') {
                            self.bump();
                            self.bump()
                        } else {
                            self.bump()
                        };
                        if hi < c {
                            self.fail("descending character range");
                        }
                        class.ranges.push((c, hi));
                    } else {
                        class.ranges.push((c, c));
                    }
                }
            }
        }
        if negated {
            // `[^...]` at class level: anything non-control except the set.
            CharClass {
                non_control: true,
                ranges: Vec::new(),
                excluded: {
                    let mut ex = class.ranges;
                    ex.extend(class.excluded);
                    ex
                },
            }
        } else {
            class
        }
    }

    /// A `[^...]` following `&&` — returns the ranges to exclude.
    fn parse_bracketed_negation(&mut self) -> Vec<(char, char)> {
        if self.bump() != '[' || self.bump() != '^' {
            self.fail("only '&&[^...]' subtraction is supported");
        }
        let mut excluded = Vec::new();
        loop {
            match self.peek() {
                None => self.fail("unterminated '&&[^...]'"),
                Some(']') => {
                    self.bump();
                    return excluded;
                }
                Some('\\') => {
                    self.bump();
                    let c = self.bump();
                    excluded.push((c, c));
                }
                Some(c) => {
                    self.bump();
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']')
                    {
                        self.bump();
                        let hi = self.bump();
                        excluded.push((c, hi));
                    } else {
                        excluded.push((c, c));
                    }
                }
            }
        }
    }

    fn parse_repetition(&mut self) -> (usize, usize) {
        self.bump(); // '{'
        let min = self.parse_number();
        let max = if self.peek() == Some(',') {
            self.bump();
            self.parse_number()
        } else {
            min
        };
        if self.bump() != '}' {
            self.fail("expected '}' in repetition");
        }
        if max < min {
            self.fail("repetition max below min");
        }
        (min, max)
    }

    fn parse_number(&mut self) -> usize {
        let mut n: usize = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n * 10 + d as usize;
                any = true;
                self.bump();
            } else {
                break;
            }
        }
        if !any {
            self.fail("expected a number in repetition");
        }
        n
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        let pattern = Parser::new(self).parse();
        let span = pattern.max_len - pattern.min_len + 1;
        let len = pattern.min_len + rng.below_usize(span);
        (0..len).map(|_| pattern.class.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{Config, TestRunner};

    fn sample(pattern: &'static str, cases: u32) -> Vec<String> {
        let out = std::cell::RefCell::new(Vec::new());
        let mut runner = TestRunner::new(Config::with_cases(cases));
        runner
            .run(&pattern, |s| {
                out.borrow_mut().push(s);
                Ok(())
            })
            .unwrap();
        out.into_inner()
    }

    #[test]
    fn simple_class_with_repetition() {
        for s in sample("[a-z0-9-]{1,16}", 200) {
            assert!((1..=16).contains(&s.chars().count()), "{s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn escapes_and_unicode_literals() {
        let chars: Vec<String> = sample("[a-c\\\\\"\n\t\u{e9}\u{4e16}]{1,1}", 300);
        let mut seen = std::collections::HashSet::new();
        for s in &chars {
            let c = s.chars().next().unwrap();
            assert!(
                ('a'..='c').contains(&c)
                    || ['\\', '"', '\n', '\t', '\u{e9}', '\u{4e16}'].contains(&c),
                "{c:?}"
            );
            seen.insert(c);
        }
        assert!(seen.len() >= 5, "poor coverage: {seen:?}");
    }

    #[test]
    fn non_control_excludes_controls() {
        for s in sample("\\PC{0,64}", 100) {
            assert!(s.chars().count() <= 64);
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn intersection_subtracts() {
        for s in sample("[\\PC&&[^\"\\\\]]{0,24}", 300) {
            assert!(!s.contains('"') && !s.contains('\\'), "{s:?}");
            assert!(!s.chars().any(|c| c.is_control()), "{s:?}");
        }
    }
}
