//! `option::of`: wrap a strategy's values in `Option`, `None` half the
//! time (the real crate's default probability).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.weighted_bool(0.5) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}
