//! Offline drop-in subset of the `proptest 1.x` API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! features its property tests use are reimplemented here: the [`Strategy`]
//! trait (`prop_map`, `prop_recursive`, `boxed`), range / tuple / regex-string
//! strategies, `collection::vec`, `option::of`, the `proptest!` /
//! `prop_assert*!` / `prop_oneof!` macros and a [`test_runner::TestRunner`].
//!
//! Two deliberate simplifications versus the real crate:
//!
//! * **No shrinking.** A failing case reports the generated input as-is.
//! * **Regex strategies** support the subset of syntax the test suite uses:
//!   a single character class (`[...]` with ranges, escapes, literal chars,
//!   `\PC`, and `&&[^...]` intersections) with an `{m,n}` repetition.
//!
//! Generation is deterministic: every `TestRunner` starts from a fixed seed,
//! so test failures reproduce across runs and machines.

// Vendored compatibility shim: keep it byte-stable rather than chasing
// the lint set of each new toolchain.
#![allow(clippy::all)]

pub mod collection;
pub mod option;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `proptest! { ... }`: a block of property-test functions whose arguments
/// are drawn from strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))] // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                let outcome = runner.run(&($($strat,)+), |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(err) = outcome {
                    ::core::panic!("{}", err);
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`: fail the
/// current test case (returning from the enclosing closure) without
/// panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}\n  both: `{:?}`",
            ::std::format!($($fmt)+),
            left
        );
    }};
}

/// `prop_oneof![s1, s2, ...]`: choose uniformly among strategies producing
/// the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
