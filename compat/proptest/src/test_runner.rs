//! The case-driving machinery: [`Config`], [`TestRunner`], and the error
//! types the `prop_assert*` macros produce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::strategy::Strategy;

/// The deterministic RNG handed to strategies.
///
/// Wraps the workspace's `StdRng`; strategies consume it through the small
/// typed helpers below rather than `rand`'s traits so the strategy code
/// stays independent of the RNG crate's API.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    pub fn weighted_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable (as in upstream proptest) overrides the configured value,
    /// so CI can crank scheduled runs up without touching test code.
    fn effective_cases(&self) -> u32 {
        parse_cases_override(std::env::var("PROPTEST_CASES").ok().as_deref())
            .unwrap_or(self.cases)
    }
}

/// Parses a `PROPTEST_CASES`-style override; garbage and zero disable it.
fn parse_cases_override(var: Option<&str>) -> Option<u32> {
    var.and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0)
}

impl Default for Config {
    fn default() -> Config {
        // Matches proptest's default.
        Config { cases: 256 }
    }
}

/// A single failed case, as produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Failure of a whole property test (first failing case; no shrinking).
#[derive(Clone, Debug)]
pub struct TestError {
    pub message: String,
}

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestError {}

pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: Config) -> TestRunner {
        // Fixed seed: failures reproduce across runs and machines.
        TestRunner {
            config,
            rng: TestRng::from_seed(0x70726f70_74657374), // "proptest"
        }
    }

    /// Generate `config.cases` inputs (or `PROPTEST_CASES` of them) and
    /// run `test` on each; the first failure aborts with the generated
    /// input in the message. When `PROPTEST_FAILURE_DIR` is set, the
    /// failure report is also written to `<dir>/<test-thread-name>.txt`
    /// so CI can upload failing cases as artifacts.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let cases = self.config.effective_cases();
        for case in 0..cases {
            let value = strategy.new_value(&mut self.rng);
            let mut shown = format!("{value:?}");
            if shown.len() > 600 {
                let cut = (0..=600).rev().find(|&i| shown.is_char_boundary(i)).unwrap_or(0);
                shown.truncate(cut);
                shown.push_str("…");
            }
            if let Err(err) = test(value) {
                let message = format!(
                    "property failed at case {}/{}: {}\ninput: {}",
                    case + 1,
                    cases,
                    err.message,
                    shown
                );
                persist_failure(&message);
                return Err(TestError { message });
            }
        }
        Ok(())
    }
}

/// Writes a failure report under `$PROPTEST_FAILURE_DIR`, named after the
/// test thread (which libtest names after the test function). The fixed
/// generation seed plus the recorded case index makes every dumped
/// failure reproducible with `PROPTEST_CASES=<n> cargo test <name>`.
fn persist_failure(message: &str) {
    let Ok(dir) = std::env::var("PROPTEST_FAILURE_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    let thread = std::thread::current();
    let name = thread
        .name()
        .unwrap_or("unnamed-test")
        .replace("::", "_")
        .replace(['/', '\\'], "_");
    let _ = std::fs::write(format!("{dir}/{name}.txt"), message);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_override_parsing() {
        assert_eq!(parse_cases_override(None), None);
        assert_eq!(parse_cases_override(Some("5000")), Some(5000));
        assert_eq!(parse_cases_override(Some(" 192 ")), Some(192));
        assert_eq!(parse_cases_override(Some("not-a-number")), None);
        assert_eq!(parse_cases_override(Some("0")), None, "zero cases is nonsense");
        assert_eq!(parse_cases_override(Some("")), None);
    }

    #[test]
    fn failure_reports_name_the_case_and_input() {
        let mut runner = TestRunner::new(Config::with_cases(10));
        let err = runner
            .run(&(0u64..100), |v| {
                if v < 90 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("too big"))
                }
            })
            .expect_err("some draw in [90,100) must occur within 10 cases — fixed seed");
        assert!(err.message.contains("too big"), "{}", err.message);
        assert!(err.message.contains("input:"), "{}", err.message);
    }
}
