//! The case-driving machinery: [`Config`], [`TestRunner`], and the error
//! types the `prop_assert*` macros produce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::strategy::Strategy;

/// The deterministic RNG handed to strategies.
///
/// Wraps the workspace's `StdRng`; strategies consume it through the small
/// typed helpers below rather than `rand`'s traits so the strategy code
/// stays independent of the RNG crate's API.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_seed(seed: u64) -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    pub fn weighted_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        // Matches proptest's default.
        Config { cases: 256 }
    }
}

/// A single failed case, as produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Failure of a whole property test (first failing case; no shrinking).
#[derive(Clone, Debug)]
pub struct TestError {
    pub message: String,
}

impl std::fmt::Display for TestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestError {}

pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: Config) -> TestRunner {
        // Fixed seed: failures reproduce across runs and machines.
        TestRunner {
            config,
            rng: TestRng::from_seed(0x70726f70_74657374), // "proptest"
        }
    }

    /// Generate `config.cases` inputs and run `test` on each; the first
    /// failure aborts with the generated input in the message.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        for case in 0..self.config.cases {
            let value = strategy.new_value(&mut self.rng);
            let mut shown = format!("{value:?}");
            if shown.len() > 600 {
                let cut = (0..=600).rev().find(|&i| shown.is_char_boundary(i)).unwrap_or(0);
                shown.truncate(cut);
                shown.push_str("…");
            }
            if let Err(err) = test(value) {
                return Err(TestError {
                    message: format!(
                        "property failed at case {}/{}: {}\ninput: {}",
                        case + 1,
                        self.config.cases,
                        err.message,
                        shown
                    ),
                });
            }
        }
        Ok(())
    }
}
