//! Offline drop-in subset of the `criterion 0.5` API.
//!
//! The workspace builds in environments with no crates.io access; this shim
//! keeps the `[[bench]]` targets compiling and produces simple wall-clock
//! measurements (mean/min over `sample_size` timed runs after one warm-up)
//! printed to stdout. No statistical analysis, HTML reports, or history.

// Vendored compatibility shim: keep it byte-stable rather than chasing
// the lint set of each new toolchain.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier, e.g. `BenchmarkId::from_parameter(24)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Accepts both `&str` and [`BenchmarkId`] where criterion does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_owned() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        println!(
            "{group}/{id}: mean {} / min {} over {} samples",
            format_duration(mean),
            format_duration(*min),
            self.samples.len()
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1.0e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1.0e3)
    } else {
        format!("{nanos} ns")
    }
}

/// `criterion_group!(name, bench_fn, ...)`: a function running each bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        for n in [2u64, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| n * 2)
            });
        }
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(24).id, "24");
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
