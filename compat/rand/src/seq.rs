//! Sequence helpers (`rand::seq` subset): `SliceRandom`.

use crate::{Rng, RngCore};

/// Slice extension trait matching `rand 0.8`'s `SliceRandom` for the
/// methods this workspace uses.
pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle, identical draw order to `rand 0.8`:
    /// iterate `i` from `len-1` down to `1`, swapping with
    /// `gen_range(0..=i)`.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element (`None` on an empty slice).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "seed 5 must actually permute");
    }

    #[test]
    fn shuffle_matches_reverse_fisher_yates_draws() {
        // Replay the same RNG manually to pin the draw order.
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut StdRng::seed_from_u64(11));

        let mut expect: Vec<u32> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(11);
        for i in (1..expect.len()).rev() {
            let j = rng.gen_range(0..=i);
            expect.swap(i, j);
        }
        assert_eq!(v, expect);
    }

    #[test]
    fn choose_covers_bounds() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
