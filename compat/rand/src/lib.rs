//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` features the simulator depends on are reimplemented
//! here **bit-compatibly** with `rand 0.8.5` + `rand_chacha 0.3`:
//!
//! * [`rngs::StdRng`] is ChaCha12 with the same 4-block buffering and the
//!   same `next_u32`/`next_u64` word-consumption order as `rand_chacha`'s
//!   `BlockRng` wrapper.
//! * [`SeedableRng::seed_from_u64`] uses the identical PCG32 seed-expansion
//!   routine as `rand_core 0.6`.
//! * [`Rng::gen_range`] reproduces the widening-multiply rejection sampler
//!   of `rand 0.8`'s `UniformInt`, and [`seq::SliceRandom::shuffle`] is the
//!   same reverse Fisher–Yates over `gen_range(0..=i)`.
//! * [`Rng::gen_bool`] reproduces the `Bernoulli` u64-threshold sampler.
//!
//! Bit-compatibility matters: every experiment in `results/` is keyed by a
//! seed, and regenerated outputs must match across environments. The
//! ChaCha core is validated against the RFC 8439 test vectors in the tests
//! below; the end-to-end stream is validated by regenerating the committed
//! experiment outputs.

// Vendored compatibility shim: keep it byte-stable rather than chasing
// the lint set of each new toolchain.
#![allow(clippy::all)]

mod chacha;

pub mod rngs {
    pub use crate::chacha::StdRng;
}

pub mod seq;

/// Core RNG interface (the `rand_core` subset the workspace uses).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction, with the `rand_core 0.6` PCG32 seed expansion.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // Identical to rand_core 0.6: a PCG32 sequence expands the u64
        // into the full seed width, 4 bytes at a time.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values samplable from the uniform "standard" distribution, matching
/// `rand 0.8`'s `Standard` impls.
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        // rand 0.8 on 64-bit targets: usize samples like u64.
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8: the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8 "multiply-based" [0, 1): 53 significant bits.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`], matching `rand 0.8`'s
/// `UniformInt::sample_single{,_inclusive}` widening-multiply rejection.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($ty:ty) => {
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start) as u64;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: u64 = rng.next_u64();
                    let (hi, lo) = wmul64(v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = (high.wrapping_sub(low) as u64).wrapping_add(1);
                if range == 0 {
                    // Full integer range.
                    return rng.next_u64() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: u64 = rng.next_u64();
                    let (hi, lo) = wmul64(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_range!(usize);
uniform_int_range!(u64);
uniform_int_range!(u32);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // Scale-and-shift; adequate for the float ranges the workspace
        // draws (no committed output depends on rand's exact f64 uniform).
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// The user-facing RNG extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sampling, identical to `rand 0.8`'s `Bernoulli`:
    /// `p` is mapped to a u64 threshold via `(p * 2^64) as u64`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p == 1.0 {
            // rand's Bernoulli short-circuits ALWAYS_TRUE without drawing.
            return true;
        }
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seed_expansion_matches_rand_core() {
        // The PCG32 expansion is deterministic; pin the first word so a
        // refactor can't silently change the stream.
        struct Probe([u8; 32]);
        impl SeedableRng for Probe {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Probe {
                Probe(seed)
            }
        }
        let a = Probe::seed_from_u64(42).0;
        let b = Probe::seed_from_u64(42).0;
        assert_eq!(a, b);
        let c = Probe::seed_from_u64(43).0;
        assert_ne!(a, c);
    }

    #[test]
    fn gen_bool_is_threshold_sampler() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = rng2.next_u64();
            const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
            let expect = v < (0.3 * SCALE) as u64;
            assert_eq!(rng.gen_bool(0.3), expect);
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0..17usize);
            assert!(x < 17);
            let y = rng.gen_range(3..=9u64);
            assert!((3..=9).contains(&y));
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
