//! ChaCha12 keyed PRNG, bit-compatible with `rand_chacha 0.3`'s
//! `ChaCha12Rng` (which is `rand 0.8`'s `StdRng`).
//!
//! Layout notes that matter for compatibility:
//!
//! * The state is the standard ChaCha matrix: 4 constant words, 8 key
//!   words (the seed, little-endian), a 64-bit block counter in words
//!   12–13 and a 64-bit stream id in words 14–15 (zero for `from_seed`).
//! * `rand_chacha` buffers **four** 16-word blocks per refill (counters
//!   `c, c+1, c+2, c+3`, laid out block-major), and its `BlockRng` wrapper
//!   consumes the 64-word buffer with a specific straddling rule for
//!   `next_u64` at the buffer boundary — reproduced verbatim below.

use crate::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 12;
const BUF_WORDS: usize = 64; // 4 blocks × 16 words

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: input state -> 16 output words (input + permuted).
fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
    let mut x = *input;
    debug_assert!(rounds % 2 == 0);
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    let mut out = [0u32; 16];
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
    out
}

/// `rand 0.8`'s `StdRng`: ChaCha12 behind a `BlockRng`-equivalent buffer.
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    stream: u64,
    /// Counter of the *next* block batch to generate.
    counter: u64,
    buf: [u32; BUF_WORDS],
    /// Next unconsumed word in `buf`; `BUF_WORDS` means "refill needed".
    index: usize,
}

impl StdRng {
    fn generate(&mut self) {
        for block in 0..4u64 {
            let c = self.counter.wrapping_add(block);
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CONSTANTS);
            state[4..12].copy_from_slice(&self.key);
            state[12] = c as u32;
            state[13] = (c >> 32) as u32;
            state[14] = self.stream as u32;
            state[15] = (self.stream >> 32) as u32;
            let out = chacha_block(&state, ROUNDS);
            self.buf[block as usize * 16..block as usize * 16 + 16].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(4);
    }

    fn generate_and_set(&mut self, index: usize) {
        self.generate();
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng {
            key,
            stream: 0,
            counter: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.buf[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // Verbatim port of rand_core 0.6 BlockRng::next_u64.
        let read_u64 = |buf: &[u32; BUF_WORDS], index: usize| {
            (u64::from(buf[index + 1]) << 32) | u64::from(buf[index])
        };
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read_u64(&self.buf, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read_u64(&self.buf, 0)
        } else {
            // Straddle: high half comes from the next buffer.
            let x = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.buf[0]);
            (y << 32) | x
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Byte-level fill (rand's fill_via_u32_chunks). Not on the hot
        // path; word-aligned consumption keeps the stream compatible.
        let mut filled = 0;
        while filled < dest.len() {
            let word = self.next_u32().to_le_bytes();
            let n = (dest.len() - filled).min(4);
            dest[filled..filled + n].copy_from_slice(&word[..n]);
            filled += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1 quarter-round test vector.
    #[test]
    fn rfc8439_quarter_round() {
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    /// RFC 8439 §2.3.2: full 20-round block function test vector. The
    /// round/permutation machinery is shared with the 12-round variant, so
    /// this pins the core.
    #[test]
    fn rfc8439_block_function() {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        // Key 00 01 02 ... 1f, little-endian words.
        for i in 0..8u32 {
            let b = 4 * i;
            state[4 + i as usize] =
                u32::from_le_bytes([b as u8, (b + 1) as u8, (b + 2) as u8, (b + 3) as u8]);
        }
        state[12] = 1; // block counter
        state[13] = 0x09000000; // nonce 00 00 00 09
        state[14] = 0x4a000000; // nonce 00 00 00 4a
        state[15] = 0x00000000;
        let out = chacha_block(&state, 20);
        let expected: [u32; 16] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let mut c = StdRng::seed_from_u64(124);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn u64_straddles_buffer_boundary() {
        // Consume 63 u32s, then a u64 must take the last word as the low
        // half and the first word of the fresh buffer as the high half.
        let mut rng = StdRng::seed_from_u64(9);
        let mut words = Vec::new();
        let mut probe = StdRng::seed_from_u64(9);
        for _ in 0..(2 * BUF_WORDS) {
            words.push(probe.next_u32());
        }
        for _ in 0..BUF_WORDS - 1 {
            rng.next_u32();
        }
        let straddled = rng.next_u64();
        assert_eq!(
            straddled,
            (u64::from(words[BUF_WORDS]) << 32) | u64::from(words[BUF_WORDS - 1])
        );
        // And the next u32 continues at word index 1 of the new buffer.
        assert_eq!(rng.next_u32(), words[BUF_WORDS + 1]);
    }
}

#[cfg(test)]
mod isolation_tests {
    use super::*;

    #[test]
    fn chacha20_zero_seed_first_block() {
        // rand_chacha 0.3 test_chacha_true_values_a (IETF draft vectors):
        // ChaCha20Rng::from_seed([0;32]) first 16 next_u32 values.
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        let out = chacha_block(&state, 20);
        let expected: [u32; 16] = [
            0xade0b876, 0x903df1a0, 0xe56a5d40, 0x28bd8653,
            0xb819d2bd, 0x1aed8da0, 0xccef36a8, 0xc70d778b,
            0x7c5941da, 0x8d485751, 0x3fe02477, 0x374ad8b8,
            0xf4b8436a, 0x1ca11815, 0x69b687c3, 0x8665eeb2,
        ];
        assert_eq!(out, expected);
    }
}
