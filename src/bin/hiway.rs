//! The Hi-WAY client (paper §3.1: "to submit workflows for execution,
//! Hi-WAY provides a light-weight client program").
//!
//! ```text
//! hiway run <recipe-file> [--trace <out-file>] [--verbose]
//! hiway replay <trace-file> <recipe-file> [--verbose]
//! hiway check <recipe-file>
//! hiway dot <recipe-file>
//! hiway table1
//! ```
//!
//! `run` cooks a recipe (infrastructure + staged inputs + workflow),
//! submits the workflow to a fresh Hi-WAY AM, prints the execution
//! report, and optionally writes the provenance trace — which `replay`
//! can then execute as a workflow of its own (§3.5). `check` parses and
//! cooks a recipe without running it.

use std::process::ExitCode;

use hiway::core::driver::Runtime;
use hiway::lang::ir::WorkflowSource;
use hiway::provdb::ProvDb;
use hiway::recipes::{cook, parse_recipe};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  hiway run <recipe-file> [--trace <out-file>] [--verbose]\n  \
         hiway replay <trace-file> <recipe-file> [--verbose]\n  \
         hiway check <recipe-file>\n  \
         hiway dot <recipe-file>\n  \
         hiway table1"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .cloned();

    match positional.first().map(|s| s.as_str()) {
        Some("run") => {
            let Some(path) = positional.get(1) else {
                return usage();
            };
            run_recipe(path, trace_out.as_deref(), verbose, None)
        }
        Some("replay") => {
            let (Some(trace_path), Some(recipe_path)) = (positional.get(1), positional.get(2))
            else {
                return usage();
            };
            run_recipe(recipe_path, None, verbose, Some(trace_path))
        }
        Some("check") => {
            let Some(path) = positional.get(1) else {
                return usage();
            };
            match read_and_cook(path) {
                Ok(cooked) => {
                    println!(
                        "recipe OK: workflow '{}' ({}), {} workers, scheduler {}",
                        cooked.source.name(),
                        cooked.source.language(),
                        cooked.workers.len(),
                        cooked.config.scheduler.name()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("dot") => {
            let Some(path) = positional.get(1) else {
                return usage();
            };
            match read_and_cook(path) {
                Ok(mut cooked) => {
                    // Static languages render directly; iterative ones
                    // render the currently inferable task graph.
                    match cooked.source.initial_tasks() {
                        Ok(tasks) => {
                            let wf = hiway::lang::StaticWorkflow::new(
                                cooked.source.name().to_string(),
                                cooked.source.language(),
                                tasks,
                            );
                            // Tolerate a closed pipe (e.g. `| head`).
                            use std::io::Write;
                            let _ = std::io::stdout().write_all(wf.to_dot().as_bytes());
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("{e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("table1") => {
            println!("{}", hiway_table1());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn hiway_table1() -> String {
    // A static rendition of the paper's Table 1 for quick reference.
    "Experiments reproduced by this build (see EXPERIMENTS.md):\n\
     - SNV calling  | Cuneiform | data-aware | 24-node local cluster | fig4\n\
     - SNV calling  | Cuneiform | FCFS       | 1-128 EC2 m3.large    | table2\n\
     - RNA-seq      | Galaxy    | data-aware | 1-6 EC2 c3.2xlarge    | fig8\n\
     - Montage      | DAX       | HEFT       | 11 stressed workers   | fig9"
        .to_string()
}

fn read_and_cook(path: &str) -> Result<hiway::recipes::CookedExperiment, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read recipe '{path}': {e}"))?;
    let recipe = parse_recipe(&text).map_err(|e| e.to_string())?;
    cook(&recipe).map_err(|e| e.to_string())
}

fn run_recipe(
    recipe_path: &str,
    trace_out: Option<&str>,
    verbose: bool,
    replay_trace: Option<&str>,
) -> ExitCode {
    let cooked = match read_and_cook(recipe_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut runtime: Runtime = cooked.runtime;
    let mut config = cooked.config;

    // In replay mode the recipe provides infrastructure + staged inputs;
    // the workflow itself comes from the trace file (§3.5: trace files
    // are "intended for use on the same cluster").
    let source: Box<dyn WorkflowSource> = if let Some(trace_path) = replay_trace {
        let text = match std::fs::read_to_string(trace_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read trace '{trace_path}': {e}");
                return ExitCode::FAILURE;
            }
        };
        match hiway::lang::trace::parse_trace(&text) {
            Ok(wf) => Box::new(wf),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        cooked.source
    };

    config.write_trace = true;
    let wf = runtime.submit(source, config, ProvDb::new());
    let reports = runtime.run_to_completion();
    if let Some(err) = runtime.error_of(wf) {
        eprintln!("workflow failed: {err}");
        return ExitCode::FAILURE;
    }
    let report = &reports[wf];
    println!(
        "workflow '{}' [{}] finished: {} tasks in {:.1} virtual minutes (scheduler: {})",
        report.name,
        report.language,
        report.tasks.len(),
        report.runtime_mins(),
        report.scheduler
    );
    for (tool, count) in report.task_histogram() {
        println!("  {tool:<20} x{count}");
    }
    if verbose {
        println!("\nper-task schedule:");
        for t in &report.tasks {
            println!(
                "  {:>4} {:<20} {:<12} ready {:>9.1}s start {:>9.1}s end {:>9.1}s attempts {}",
                t.id.0, t.name, t.node, t.t_ready, t.t_start, t.t_end, t.attempts
            );
        }
    }
    if let Some(out) = trace_out {
        if let Err(e) = std::fs::write(out, &report.trace) {
            eprintln!("cannot write trace '{out}': {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "provenance trace written to {out} ({} events)",
            report.trace.lines().count()
        );
    }
    ExitCode::SUCCESS
}
