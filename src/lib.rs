//! # hiway — facade crate for the Hi-WAY reproduction
//!
//! Re-exports the public API of the whole workspace: the simulated Hadoop
//! substrate ([`sim`], [`hdfs`], [`yarn`]), the workflow languages
//! ([`lang`], [`format`](mod@format)), the Hi-WAY application master ([`core`]), the
//! provenance store ([`provdb`]), workload generators ([`workloads`]), and
//! reproducible setup recipes ([`recipes`]).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and the per-experiment index.

pub use hiway_core as core;
pub use hiway_format as format;
pub use hiway_hdfs as hdfs;
pub use hiway_lang as lang;
pub use hiway_provdb as provdb;
pub use hiway_recipes as recipes;
pub use hiway_sim as sim;
pub use hiway_workloads as workloads;
pub use hiway_yarn as yarn;
